// Package tensor implements the dense N-dimensional array substrate that the
// rest of GoldenEye is built on. It plays the role PyTorch's ATen plays for
// the original system: float32 storage, row-major contiguous layout, blocked
// and goroutine-parallel matrix multiply, im2col convolution, reductions,
// and deterministic random initialization.
//
// Tensors are contiguous and row-major. Shapes are immutable after
// construction except through Reshape, which requires an identical element
// count. All operations allocate their result unless the name ends in
// "InPlace".
package tensor

import (
	"fmt"
	"math"
	"strings"

	"goldeneye/internal/rng"
)

// Tensor is a dense, row-major, float32 N-dimensional array.
type Tensor struct {
	data  []float32
	shape []int
}

// New returns a zero-filled tensor with the given shape.
// It panics on a non-positive dimension, since a malformed shape is always a
// programming error in this codebase (shapes never come from external input).
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		data:  make([]float32, n),
		shape: append([]int(nil), shape...),
	}
}

// FromSlice wraps data into a tensor of the given shape, copying the slice.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	t := New(shape...)
	copy(t.data, data)
	return t
}

// Wrap returns a tensor that aliases data as its storage — no copy. The
// caller keeps ownership of the slice: mutations flow both ways, and the
// data must outlive the tensor. This is the arena path: campaign scratch
// buffers become tensors without a per-use allocation. Use FromSlice when
// an independent copy is wanted.
func Wrap(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: Wrap data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor with elements drawn from N(0, std²).
func Randn(r *rng.RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(r *rng.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = float32(lo + r.Float64()*span)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	return append([]int(nil), t.shape...)
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. The slice aliases the tensor; callers
// that mutate it mutate the tensor. This is deliberate: the format-emulation
// and fault-injection hot paths quantize tensors in place.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom overwrites t's data with src's. Shapes must have equal element
// counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view-copy of t with a new shape of equal element count.
// One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
			continue
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer Reshape %v from %d elements", shape, len(t.data)))
		}
		shape[infer] = len(t.data) / known
	}
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v (%d) does not match %d elements", shape, n, len(t.data)))
	}
	return &Tensor{data: t.data, shape: shape}
}

// Row returns a copy of row i of a rank-2 tensor as a rank-1 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	cols := t.shape[1]
	out := New(cols)
	copy(out.data, t.data[i*cols:(i+1)*cols])
	return out
}

// SetRow overwrites row i of a rank-2 tensor with the rank-1 tensor v.
func (t *Tensor) SetRow(i int, v *Tensor) {
	if len(t.shape) != 2 || len(v.data) != t.shape[1] {
		panic("tensor: SetRow shape mismatch")
	}
	copy(t.data[i*t.shape[1]:(i+1)*t.shape[1]], v.data)
}

// String renders a compact, human-readable summary (shape plus leading
// elements); used in error messages and debugging, not serialization.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if show < n {
		fmt.Fprintf(&b, " …+%d", n-show)
	}
	b.WriteString("]")
	return b.String()
}

// AllClose reports whether t and o have identical shapes and element-wise
// absolute differences no greater than tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !shapeEqual(t.shape, o.shape) {
		return false
	}
	for i := range t.data {
		d := float64(t.data[i]) - float64(o.data[i])
		if math.Abs(d) > tol {
			return false
		}
	}
	return true
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
