package tensor

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"goldeneye/internal/rng"
)

// bitsEqual reports exact float32 bit equality between two tensors,
// treating NaN payloads as equal to themselves only (bit comparison).
func bitsEqual(t *testing.T, got, want *Tensor) {
	t.Helper()
	if !shapeEqual(got.shape, want.shape) {
		t.Fatalf("shape %v vs %v", got.shape, want.shape)
	}
	for i := range got.data {
		if math.Float32bits(got.data[i]) != math.Float32bits(want.data[i]) {
			t.Fatalf("element %d differs: %v (%#x) vs %v (%#x)",
				i, got.data[i], math.Float32bits(got.data[i]),
				want.data[i], math.Float32bits(want.data[i]))
		}
	}
}

// MatMulBias must be bit-identical to the unfused MatMul+Add sequence it
// replaces in the layer forward path — including on outputs large enough
// to take the parallel-rows path.
func TestMatMulBiasMatchesMatMulAdd(t *testing.T) {
	for _, dims := range [][3]int{{3, 5, 7}, {1, 8, 4}, {64, 96, 300}} {
		m, k, n := dims[0], dims[1], dims[2]
		r := rng.New(42)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		bias := Randn(r, 1, n)
		want := a.MatMul(b).Add(bias)
		got := a.MatMulBias(b, bias, Epilogue{})
		bitsEqual(t, got, want)
	}
}

func TestMatMulBiasNilBias(t *testing.T) {
	r := rng.New(7)
	a := Randn(r, 1, 4, 6)
	b := Randn(r, 1, 6, 3)
	bitsEqual(t, a.MatMulBias(b, nil, Epilogue{}), a.MatMul(b))
}

// Tile epilogues run inside the producing workers over disjoint chunks
// that exactly cover the output; Rows and Whole run once after the
// barrier with the full storage.
func TestMatMulBiasEpilogueCoverage(t *testing.T) {
	r := rng.New(9)
	m, k, n := 40, 16, 512 // m*n over matmulParallelThreshold: parallel path
	a := Randn(r, 1, m, k)
	b := Randn(r, 1, k, n)

	var covered atomic.Int64
	got := a.MatMulBias(b, nil, Epilogue{Tile: func(chunk []float32) {
		covered.Add(int64(len(chunk)))
		for i := range chunk {
			chunk[i] += 1
		}
	}})
	if covered.Load() != int64(m*n) {
		t.Fatalf("tile chunks covered %d of %d elements", covered.Load(), m*n)
	}
	want := a.MatMul(b).AddScalar(1)
	bitsEqual(t, got, want)

	rowsCalls := 0
	got = a.MatMulBias(b, nil, Epilogue{Rows: func(data []float32, rows, rowLen int) {
		rowsCalls++
		if rows != m || rowLen != n || len(data) != m*n {
			t.Fatalf("Rows got (%d, %d, len %d)", rows, rowLen, len(data))
		}
	}})
	if rowsCalls != 1 {
		t.Fatalf("Rows ran %d times", rowsCalls)
	}
	bitsEqual(t, got, a.MatMul(b))

	wholeCalls := 0
	a.MatMulBias(b, nil, Epilogue{Whole: func(data []float32) {
		wholeCalls++
		if len(data) != m*n {
			t.Fatalf("Whole got len %d", len(data))
		}
	}})
	if wholeCalls != 1 {
		t.Fatalf("Whole ran %d times", wholeCalls)
	}
}

func TestEpilogueEmpty(t *testing.T) {
	if !(Epilogue{}).Empty() {
		t.Fatal("zero epilogue should be empty")
	}
	if (Epilogue{Whole: func([]float32) {}}).Empty() {
		t.Fatal("epilogue with Whole should not be empty")
	}
}

func TestWrapAliases(t *testing.T) {
	buf := []float32{1, 2, 3, 4, 5, 6}
	w := Wrap(buf, 2, 3)
	w.Set(42, 1, 2)
	if buf[5] != 42 {
		t.Fatal("Wrap did not alias the slice")
	}
	buf[0] = -1
	if w.At(0, 0) != -1 {
		t.Fatal("slice writes not visible through the tensor")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with mismatched length should panic")
		}
	}()
	Wrap(buf, 7)
}

func TestGatherRowsIntoMatchesGather0(t *testing.T) {
	r := rng.New(3)
	src := Randn(r, 1, 6, 4)
	idx := []int{5, 0, 0, 3}
	dst := New(len(idx), 4)
	GatherRowsInto(dst, src, idx)
	bitsEqual(t, dst, Gather0(src, idx))
}

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	b1 := a.Get(100)
	if len(b1) != 100 || cap(b1) != 128 {
		t.Fatalf("Get(100) gave len %d cap %d", len(b1), cap(b1))
	}
	a.Put(b1)
	b2 := a.Get(128) // same size class: must come back from the pool
	if &b1[0] != &b2[0] {
		t.Fatal("arena did not reuse the pooled buffer")
	}
	if got := a.Get(0); got != nil {
		t.Fatalf("Get(0) = %v", got)
	}
	a.Put(nil)                   // no-op
	a.Put(make([]float32, 0, 7)) // non-power-of-two capacity: dropped
}

// The arena is shared by concurrent campaigns; hammer Get/Put from many
// goroutines (run under -race by make check).
func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (w*31+i*17)%4096
				buf := a.Get(n)
				for j := range buf {
					buf[j] = float32(w)
				}
				for j := range buf {
					if buf[j] != float32(w) {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				a.Put(buf)
			}
		}(w)
	}
	wg.Wait()
}
