package tensor

import (
	"fmt"
	"time"
)

// ConvOut returns the spatial output size of a convolution/pooling window.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds an NCHW input into a (C*KH*KW, N*OH*OW) matrix so that a
// convolution becomes a single matrix multiply with a (OC, C*KH*KW) weight
// matrix. This is the standard lowering used by the original system's
// backends.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(c*kh*kw, n*oh*ow)
	defer func(start time.Time) { recordIm2Col(start) }(time.Now())
	cols := n * oh * ow
	for ci := 0; ci < c; ci++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := (ci*kh+ki)*kw + kj
				dst := out.data[row*cols : (row+1)*cols]
				for ni := 0; ni < n; ni++ {
					src := x.data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
					for oi := 0; oi < oh; oi++ {
						ii := oi*stride - pad + ki
						base := (ni*oh + oi) * ow
						if ii < 0 || ii >= h {
							continue // leave zero padding
						}
						for oj := 0; oj < ow; oj++ {
							jj := oj*stride - pad + kj
							if jj < 0 || jj >= w {
								continue
							}
							dst[base+oj] = src[ii*w+jj]
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im folds a (C*KH*KW, N*OH*OW) column matrix back into an NCHW tensor,
// accumulating overlapping windows. It is the adjoint of Im2Col and is used
// to compute input gradients of convolutions.
func Col2Im(col *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	cols := n * oh * ow
	if len(col.shape) != 2 || col.shape[0] != c*kh*kw || col.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match (%d, %d)", col.shape, c*kh*kw, cols))
	}
	out := New(n, c, h, w)
	for ci := 0; ci < c; ci++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := (ci*kh+ki)*kw + kj
				src := col.data[row*cols : (row+1)*cols]
				for ni := 0; ni < n; ni++ {
					dst := out.data[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
					for oi := 0; oi < oh; oi++ {
						ii := oi*stride - pad + ki
						if ii < 0 || ii >= h {
							continue
						}
						base := (ni*oh + oi) * ow
						for oj := 0; oj < ow; oj++ {
							jj := oj*stride - pad + kj
							if jj < 0 || jj >= w {
								continue
							}
							dst[ii*w+jj] += src[base+oj]
						}
					}
				}
			}
		}
	}
	return out
}

// MaxPool2D applies kxk max pooling with the given stride to an NCHW tensor.
// It returns the pooled tensor and the flat argmax index (into the input's
// per-image-channel plane) of each output element, which the backward pass
// uses to route gradients.
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, []int) {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D requires NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int, n*c*oh*ow)
	for nc := 0; nc < n*c; nc++ {
		plane := x.data[nc*h*w : (nc+1)*h*w]
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				best := float32(0)
				bestIdx := -1
				for ki := 0; ki < k; ki++ {
					for kj := 0; kj < k; kj++ {
						ii, jj := oi*stride+ki, oj*stride+kj
						v := plane[ii*w+jj]
						if bestIdx < 0 || v > best {
							best, bestIdx = v, ii*w+jj
						}
					}
				}
				o := (nc*oh+oi)*ow + oj
				out.data[o] = best
				arg[o] = bestIdx
			}
		}
	}
	return out, arg
}

// AvgPool2DGlobal averages each channel plane of an NCHW tensor, returning a
// rank-2 (N, C) tensor. This is the global-average-pool head used by the
// residual CNN models.
func AvgPool2DGlobal(x *Tensor) *Tensor {
	if len(x.shape) != 4 {
		panic(fmt.Sprintf("tensor: AvgPool2DGlobal requires NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c)
	inv := 1 / float32(h*w)
	for nc := 0; nc < n*c; nc++ {
		var sum float32
		for _, v := range x.data[nc*h*w : (nc+1)*h*w] {
			sum += v
		}
		out.data[nc] = sum * inv
	}
	return out
}
