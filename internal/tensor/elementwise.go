package tensor

import (
	"fmt"
	"math"
)

// Add returns t + o element-wise. Shapes must match exactly, or o may be a
// rank-1 tensor whose length equals t's last dimension (row broadcast), which
// covers the bias-add pattern used throughout the NN substrate.
func (t *Tensor) Add(o *Tensor) *Tensor {
	return t.zipBroadcast(o, func(a, b float32) float32 { return a + b })
}

// Sub returns t - o element-wise, with the same broadcast rule as Add.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	return t.zipBroadcast(o, func(a, b float32) float32 { return a - b })
}

// Mul returns t * o element-wise, with the same broadcast rule as Add.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	return t.zipBroadcast(o, func(a, b float32) float32 { return a * b })
}

// AddInPlace accumulates o into t element-wise (no broadcasting).
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: AddInPlace size mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
}

// Scale returns t * s.
func (t *Tensor) Scale(s float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = v * s
	}
	return out
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar returns t + s.
func (t *Tensor) AddScalar(s float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = v + s
	}
	return out
}

// Apply returns a tensor with f applied to every element.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of t.
func (t *Tensor) ApplyInPlace(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Clamp returns a tensor with every element limited to [lo, hi].
func (t *Tensor) Clamp(lo, hi float32) *Tensor {
	return t.Apply(func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// ClampInPlace limits every element of t to [lo, hi].
func (t *Tensor) ClampInPlace(lo, hi float32) {
	t.ApplyInPlace(func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// AbsMax returns the largest absolute element value (0 for all-zero tensors).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// MinMax returns the smallest and largest element values.
func (t *Tensor) MinMax() (lo, hi float32) {
	lo, hi = float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range t.data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// zipBroadcast applies f pairwise. It supports exact shape match, and the
// common "o is a vector matching t's last dim" broadcast.
func (t *Tensor) zipBroadcast(o *Tensor, f func(a, b float32) float32) *Tensor {
	out := New(t.shape...)
	switch {
	case shapeEqual(t.shape, o.shape):
		for i := range t.data {
			out.data[i] = f(t.data[i], o.data[i])
		}
	case len(o.shape) == 1 && o.shape[0] == t.shape[len(t.shape)-1]:
		n := o.shape[0]
		for i := range t.data {
			out.data[i] = f(t.data[i], o.data[i%n])
		}
	default:
		panic(fmt.Sprintf("tensor: incompatible shapes %v and %v", t.shape, o.shape))
	}
	return out
}
