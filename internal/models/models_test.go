package models

import (
	"testing"

	"goldeneye/internal/nn"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func sampleInput(batch int) *tensor.Tensor {
	return tensor.Randn(rng.New(1), 1, batch, InChannels, InHeight, InWidth)
}

func TestBuildAllModels(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := Build(name, 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			out := nn.Forward(nil, m, sampleInput(2))
			if out.Rank() != 2 || out.Dim(0) != 2 || out.Dim(1) != 10 {
				t.Fatalf("%s output shape %v, want (2, 10)", name, out.Shape())
			}
			if out.CountNonFinite() != 0 {
				t.Fatalf("%s produced non-finite logits at init", name)
			}
		})
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("alexnet", 10, 1); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := Build("resnet_s", 10, 7)
	b, _ := Build("resnet_s", 10, 7)
	x := sampleInput(1)
	if !nn.Forward(nil, a, x).AllClose(nn.Forward(nil, b, x), 0) {
		t.Fatal("same seed must build identical models")
	}
	c, _ := Build("resnet_s", 10, 8)
	if nn.Forward(nil, c, x).AllClose(nn.Forward(nil, a, x), 1e-9) {
		t.Fatal("different seeds should differ")
	}
}

func TestModelsHaveUniqueParamNames(t *testing.T) {
	for _, name := range Names() {
		m, _ := Build(name, 10, 1)
		seen := make(map[string]bool)
		for _, p := range m.Params() {
			if seen[p.Name] {
				t.Fatalf("%s: duplicate parameter name %q", name, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func TestModelsAreTrainable(t *testing.T) {
	// One backward step must not panic and must produce gradients on every
	// trainable parameter for every architecture.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, _ := Build(name, 10, 1)
			ctx := &nn.Context{Training: true}
			out := nn.Forward(ctx, m, sampleInput(4))
			grad := tensor.Full(0.1, out.Shape()...)
			m.Backward(grad)
			zeroGrads := 0
			trainable := 0
			for _, p := range m.Params() {
				if p.Frozen {
					continue
				}
				trainable++
				if p.Grad.AbsMax() == 0 {
					zeroGrads++
				}
			}
			// A few biases can legitimately be zero-gradient, but most
			// parameters must receive signal.
			if zeroGrads > trainable/4 {
				t.Fatalf("%s: %d of %d trainable params got no gradient", name, zeroGrads, trainable)
			}
		})
	}
}

func TestResNetDepthOrdering(t *testing.T) {
	small, _ := Build("resnet_s", 10, 1)
	medium, _ := Build("resnet_m", 10, 1)
	if nn.ParamCount(medium) <= nn.ParamCount(small) {
		t.Fatal("resnet_m must be larger than resnet_s")
	}
	tiny, _ := Build("vit_tiny", 10, 1)
	smallVit, _ := Build("vit_small", 10, 1)
	if nn.ParamCount(smallVit) <= nn.ParamCount(tiny) {
		t.Fatal("vit_small must be larger than vit_tiny")
	}
}

func TestModelsHaveConvAndLinearLayers(t *testing.T) {
	// The paper's default hooks target CONV and LINEAR; every model must
	// expose at least one injectable layer.
	for _, name := range Names() {
		m, _ := Build(name, 10, 1)
		visits := nn.Trace(m, sampleInput(1))
		convLinear := 0
		for _, v := range visits {
			if v.Kind == nn.KindConv || v.Kind == nn.KindLinear {
				convLinear++
			}
		}
		if convLinear == 0 {
			t.Fatalf("%s has no hookable CONV/LINEAR layers", name)
		}
	}
}
