// Package models builds the experiment networks: width-reduced residual
// CNNs standing in for ResNet18/ResNet50 and patch-embedding transformers
// standing in for DeiT-tiny/DeiT-base (see the substitution table in
// DESIGN.md §1). All models share the 3×16×16 input geometry of the
// synthetic dataset and are constructed deterministically from a seed.
package models

import (
	"fmt"
	"sort"

	"goldeneye/internal/nn"
	"goldeneye/internal/rng"
)

// Input geometry shared by every model and the dataset.
const (
	InChannels = 3
	InHeight   = 16
	InWidth    = 16
)

// Builder constructs a model for the given class count and seed.
type Builder func(classes int, seed uint64) nn.Module

// registry maps model names to builders. Names follow the paper's
// CNN/transformer pairing: resnet_s/_m ↔ ResNet18/50, vit_tiny/_small ↔
// DeiT-tiny/-base.
var registry = map[string]Builder{
	"resnet_s":  ResNetS,
	"resnet_m":  ResNetM,
	"vit_tiny":  ViTTiny,
	"vit_small": ViTSmall,
	"mlp":       MLP,
}

// Names returns the registered model names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs a registered model by name.
func Build(name string, classes int, seed uint64) (nn.Module, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return b(classes, seed), nil
}

// convBN returns conv → batchnorm as a sub-sequence.
func convBN(name string, in, out, k, stride, pad int, r *rng.RNG) []nn.Module {
	return []nn.Module{
		nn.NewConv2D(name+".conv", in, out, k, stride, pad, r),
		nn.NewBatchNorm2D(name+".bn", out),
	}
}

// basicBlock returns a two-conv residual block; when stride > 1 or channels
// change, the skip path gets a 1×1 strided projection.
func basicBlock(name string, in, out, stride int, r *rng.RNG) nn.Module {
	body := nn.NewSequential(name+".body",
		append(append(
			convBN(name+".a", in, out, 3, stride, 1, r),
			nn.NewReLU(name+".relu1")),
			convBN(name+".b", out, out, 3, 1, 1, r)...)...,
	)
	var proj nn.Module
	if stride != 1 || in != out {
		proj = nn.NewSequential(name+".down",
			convBN(name+".down", in, out, 1, stride, 0, r)...)
	}
	return nn.NewResidual(name, body, proj, nn.NewReLU(name+".relu2"))
}

// resnet builds a 3-stage residual CNN with the given per-stage channel
// widths and blocks per stage.
func resnet(name string, channels [3]int, blocks int, classes int, seed uint64) nn.Module {
	r := rng.New(seed)
	mods := convBN(name+".stem", InChannels, channels[0], 3, 1, 1, r)
	mods = append(mods, nn.NewReLU(name+".stem.relu"))
	in := channels[0]
	for stage, ch := range channels {
		for b := 0; b < blocks; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			mods = append(mods, basicBlock(fmt.Sprintf("%s.s%db%d", name, stage, b), in, ch, stride, r))
			in = ch
		}
	}
	mods = append(mods,
		nn.NewGlobalAvgPool(name+".gap"),
		nn.NewLinear(name+".fc", in, classes, r),
	)
	return nn.NewSequential(name, mods...)
}

// ResNetS is the ResNet18 stand-in: one basic block per stage, channel
// widths 8/16/32.
func ResNetS(classes int, seed uint64) nn.Module {
	return resnet("resnet_s", [3]int{8, 16, 32}, 1, classes, seed)
}

// ResNetM is the ResNet50 stand-in: two basic blocks per stage, channel
// widths 12/24/48.
func ResNetM(classes int, seed uint64) nn.Module {
	return resnet("resnet_m", [3]int{12, 24, 48}, 2, classes, seed)
}

// vit builds a patch-embedding transformer classifier.
func vit(name string, dim, heads, depth, mlpRatio int, classes int, seed uint64) nn.Module {
	r := rng.New(seed)
	patch := 4
	tokens := (InHeight / patch) * (InWidth / patch)
	mods := []nn.Module{
		nn.NewPatchEmbed(name+".patch", InChannels, dim, patch, r),
		nn.NewTokenPrep(name+".prep", tokens, dim, r),
	}
	for i := 0; i < depth; i++ {
		mods = append(mods, nn.NewTransformerBlock(fmt.Sprintf("%s.blk%d", name, i), dim, heads, mlpRatio, r))
	}
	mods = append(mods,
		nn.NewLayerNorm(name+".ln", dim),
		nn.NewClsSelect(name+".cls"),
		nn.NewLinear(name+".head", dim, classes, r),
	)
	return nn.NewSequential(name, mods...)
}

// ViTTiny is the DeiT-tiny stand-in: dim 32, 2 heads, depth 2.
func ViTTiny(classes int, seed uint64) nn.Module {
	return vit("vit_tiny", 32, 2, 2, 2, classes, seed)
}

// ViTSmall is the DeiT-base stand-in: dim 48, 3 heads, depth 3.
func ViTSmall(classes int, seed uint64) nn.Module {
	return vit("vit_small", 48, 3, 3, 2, classes, seed)
}

// MLP is a plain two-hidden-layer perceptron baseline.
func MLP(classes int, seed uint64) nn.Module {
	r := rng.New(seed)
	in := InChannels * InHeight * InWidth
	return nn.NewSequential("mlp",
		nn.NewFlatten("mlp.flat"),
		nn.NewLinear("mlp.fc1", in, 64, r),
		nn.NewReLU("mlp.relu1"),
		nn.NewLinear("mlp.fc2", 64, 32, r),
		nn.NewReLU("mlp.relu2"),
		nn.NewLinear("mlp.fc3", 32, classes, r),
	)
}
