package train

import (
	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and decoupled
// weight decay. Frozen parameters (BatchNorm running statistics) are left
// untouched.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD returns an optimizer with the given hyperparameters.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{
		LR:          lr,
		Momentum:    momentum,
		WeightDecay: weightDecay,
		velocity:    make(map[*nn.Param]*tensor.Tensor),
	}
}

// Step applies one update to every non-frozen parameter of m and clears the
// gradients.
func (s *SGD) Step(m nn.Module) {
	for _, p := range m.Params() {
		if p.Frozen {
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		vd, gd, wd := v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range wd {
			g := gd[i] + s.WeightDecay*wd[i]
			vd[i] = s.Momentum*vd[i] + g
			wd[i] -= s.LR * vd[i]
		}
		p.ZeroGrad()
	}
}
