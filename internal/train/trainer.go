package train

import (
	"fmt"
	"io"
	"math"

	"goldeneye/internal/dataset"
	"goldeneye/internal/nn"
	"goldeneye/internal/tensor"
)

// Config parameterizes a training run.
type Config struct {
	Epochs      int
	BatchSize   int
	LR          float32
	Momentum    float32
	WeightDecay float32

	// StopAtTrainAcc ends training early once an epoch's training accuracy
	// reaches this threshold (0 disables early stopping).
	StopAtTrainAcc float64

	// Log receives one line per epoch (nil silences logging).
	Log io.Writer

	// Hooks, when non-nil, are threaded through every forward pass, which
	// is how number-format emulation during training works (paper §V-B).
	Hooks *nn.HookSet

	// ClipNorm, when positive, rescales each step's global gradient norm
	// to at most this value. Fault-aware training (§V-D) needs it: an
	// injected exponent flip otherwise produces one enormous gradient
	// step that derails optimization.
	ClipNorm float64
}

// Result summarizes a completed training run.
type Result struct {
	Epochs    int
	FinalLoss float64
	TrainAcc  float64
	ValAcc    float64
}

// Fit trains model on ds with SGD. It is fully deterministic: batch order
// comes from the dataset's seeded shuffler.
func Fit(model nn.Module, ds *dataset.Dataset, cfg Config) Result {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		panic(fmt.Sprintf("train: implausible config %+v", cfg))
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	ctx := nn.NewContext(cfg.Hooks)
	ctx.Training = true

	var res Result
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := ds.ShuffledOrder(epoch)
		var (
			lossSum float64
			correct int
			seen    int
		)
		for lo := 0; lo+cfg.BatchSize <= len(order); lo += cfg.BatchSize {
			x, y := ds.GatherTrain(order[lo : lo+cfg.BatchSize])
			logits := nn.Forward(ctx, model, x)
			loss, grad := SoftmaxCrossEntropy(logits, y)
			lossSum += loss * float64(len(y))
			correct += correctCount(logits, y)
			seen += len(y)
			model.Backward(grad)
			if cfg.ClipNorm > 0 {
				clipGradients(model, cfg.ClipNorm)
			}
			opt.Step(model)
		}
		res.Epochs = epoch + 1
		res.FinalLoss = lossSum / float64(seen)
		res.TrainAcc = float64(correct) / float64(seen)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  train-acc %.3f\n",
				epoch+1, res.FinalLoss, res.TrainAcc)
		}
		if cfg.StopAtTrainAcc > 0 && res.TrainAcc >= cfg.StopAtTrainAcc {
			break
		}
	}
	res.ValAcc = Evaluate(model, ds.ValX, ds.ValY, cfg.BatchSize, nil)
	return res
}

// Evaluate returns top-1 accuracy of model over (x, y) in evaluation mode,
// optionally with hooks (format emulation) active.
func Evaluate(model nn.Module, x *tensor.Tensor, y []int, batch int, hooks *nn.HookSet) float64 {
	ctx := nn.NewContext(hooks)
	n := x.Dim(0)
	correct := 0
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		logits := nn.Forward(ctx, model, x.Slice(lo, hi))
		correct += correctCount(logits, y[lo:hi])
	}
	return float64(correct) / float64(n)
}

// clipGradients rescales all gradients so their global L2 norm is at most
// maxNorm. Non-finite gradients (possible under fault-injected training)
// zero the whole step rather than poisoning the weights.
func clipGradients(m nn.Module, maxNorm float64) {
	var sq float64
	for _, p := range m.Params() {
		if p.Frozen {
			continue
		}
		for _, g := range p.Grad.Data() {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	switch {
	case math.IsNaN(norm) || math.IsInf(norm, 0):
		for _, p := range m.Params() {
			if !p.Frozen {
				p.ZeroGrad()
			}
		}
	case norm > maxNorm:
		scale := float32(maxNorm / norm)
		for _, p := range m.Params() {
			if p.Frozen {
				continue
			}
			p.Grad.ScaleInPlace(scale)
		}
	}
}

func correctCount(logits *tensor.Tensor, labels []int) int {
	pred := logits.ArgMaxRows()
	c := 0
	for i, p := range pred {
		if p == labels[i] {
			c++
		}
	}
	return c
}
