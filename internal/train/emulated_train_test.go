package train

import (
	"testing"

	"goldeneye/internal/dataset"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

// TestFitUnderFormatEmulation exercises the paper's §V-B feature: number-
// format emulation active during training (forward passes quantized via
// hooks, gradients straight-through). Training must still converge.
func TestFitUnderFormatEmulation(t *testing.T) {
	cfg := dataset.Default()
	cfg.Classes = 4
	cfg.TrainPerClass = 40
	cfg.ValPerClass = 10
	ds := dataset.New(cfg)

	r := rng.New(21)
	model := nn.NewSequential("qat",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc1", cfg.Channels*cfg.Height*cfg.Width, 32, r),
		nn.NewReLU("relu"),
		nn.NewLinear("fc2", 32, cfg.Classes, r),
	)

	format := numfmt.FP8E4M3(true)
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.DefaultLayers(), func(_ nn.LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		return format.Emulate(x)
	})

	res := Fit(model, ds, Config{
		Epochs: 10, BatchSize: 16, LR: 0.05, Momentum: 0.9,
		StopAtTrainAcc: 0.98,
		Hooks:          hooks,
	})
	if res.TrainAcc < 0.85 {
		t.Fatalf("training under FP8 emulation failed to converge: %.3f", res.TrainAcc)
	}
	if res.ValAcc < 0.75 {
		t.Fatalf("validation accuracy %.3f under emulated training", res.ValAcc)
	}
}

// TestBackpropThroughEmulatedForward checks that hook-emulated forwards
// leave the backward pass functional (straight-through estimation): the
// loss must strictly decrease over steps.
func TestBackpropThroughEmulatedForward(t *testing.T) {
	cfg := dataset.Default()
	cfg.Classes = 3
	cfg.TrainPerClass = 30
	cfg.ValPerClass = 5
	ds := dataset.New(cfg)

	r := rng.New(22)
	model := nn.NewSequential("qat2",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", cfg.Channels*cfg.Height*cfg.Width, cfg.Classes, r),
	)
	format := numfmt.BFPe5m5()
	hooks := nn.NewHookSet()
	hooks.PostForward(nn.DefaultLayers(), func(_ nn.LayerInfo, x *tensor.Tensor) *tensor.Tensor {
		return format.Emulate(x)
	})
	ctx := nn.NewContext(hooks)
	ctx.Training = true
	opt := NewSGD(0.05, 0.9, 0)

	x, y := ds.TrainBatch(0, 60)
	var first, last float64
	for step := 0; step < 20; step++ {
		logits := nn.Forward(ctx, model, x)
		loss, grad := SoftmaxCrossEntropy(logits, y)
		if step == 0 {
			first = loss
		}
		last = loss
		model.Backward(grad)
		opt.Step(model)
	}
	if last >= first {
		t.Fatalf("loss did not decrease under emulated training: %v → %v", first, last)
	}
}
