package train

import (
	"math"
	"testing"
	"testing/quick"

	"goldeneye/internal/dataset"
	"goldeneye/internal/nn"
	"goldeneye/internal/rng"
	"goldeneye/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over K classes: loss = ln K, regardless of label.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln 4", loss)
	}
	// Gradient: (1/4 - 1)/N at the label, 1/4/N elsewhere, N=2.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad at label = %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad off label = %v", grad.At(0, 1))
	}
}

// Property: the analytic loss gradient matches finite differences.
func TestSoftmaxCrossEntropyGradientProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		logits := tensor.Randn(r, 2, 3, 5)
		labels := []int{r.Intn(5), r.Intn(5), r.Intn(5)}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		const eps = 1e-3
		for probe := 0; probe < 5; probe++ {
			i := r.Intn(logits.Len())
			orig := logits.Data()[i]
			logits.Data()[i] = orig + eps
			up, _ := SoftmaxCrossEntropy(logits, labels)
			logits.Data()[i] = orig - eps
			down, _ := SoftmaxCrossEntropy(logits, labels)
			logits.Data()[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-float64(grad.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradient rows sum to zero (softmax-CE invariant).
func TestCrossEntropyGradRowsSumZeroProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		logits := tensor.Randn(r, 1, 4, 6)
		labels := []int{0, 1, 2, 3}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for i := 0; i < 4; i++ {
			var sum float64
			for j := 0; j < 6; j++ {
				sum += float64(grad.At(i, j))
			}
			if math.Abs(sum) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyPerSample(t *testing.T) {
	logits := tensor.FromSlice([]float32{10, 0, 0, 10}, 2, 2)
	losses := CrossEntropyPerSample(logits, []int{0, 0})
	if losses[0] > 0.01 {
		t.Fatalf("confident correct: loss %v", losses[0])
	}
	if losses[1] < 5 {
		t.Fatalf("confident wrong: loss %v", losses[1])
	}
}

func TestCrossEntropyPerSampleNaN(t *testing.T) {
	logits := tensor.FromSlice([]float32{float32(math.NaN()), 0}, 1, 2)
	losses := CrossEntropyPerSample(logits, []int{0})
	if !math.IsInf(losses[0], 1) {
		t.Fatalf("NaN logits should yield +Inf loss, got %v", losses[0])
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 2, 0, // pred 1
		5, 1, 0, // pred 0
		0, 0, 9, // pred 2
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 0}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func TestSGDStepMovesAgainstGradient(t *testing.T) {
	r := rng.New(1)
	lin := nn.NewLinear("fc", 2, 2, r)
	before := append([]float32(nil), lin.Weight().Value.Data()...)
	for i := range lin.Weight().Grad.Data() {
		lin.Weight().Grad.Data()[i] = 1
	}
	opt := NewSGD(0.1, 0, 0)
	opt.Step(lin)
	for i, v := range lin.Weight().Value.Data() {
		if math.Abs(float64(v-(before[i]-0.1))) > 1e-6 {
			t.Fatalf("weight %d: %v, want %v", i, v, before[i]-0.1)
		}
	}
	// Gradients must be cleared after the step.
	if lin.Weight().Grad.AbsMax() != 0 {
		t.Fatal("gradients not cleared")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	r := rng.New(2)
	lin := nn.NewLinear("fc", 1, 1, r)
	opt := NewSGD(1, 0.5, 0)
	w := lin.Weight()
	start := w.Value.Data()[0]
	// Two steps with constant unit gradient: Δ = 1, then 1.5.
	w.Grad.Data()[0] = 1
	opt.Step(lin)
	w.Grad.Data()[0] = 1
	opt.Step(lin)
	want := start - 1 - 1.5
	if math.Abs(float64(w.Value.Data()[0]-want)) > 1e-6 {
		t.Fatalf("momentum update: %v, want %v", w.Value.Data()[0], want)
	}
}

func TestSGDSkipsFrozen(t *testing.T) {
	bn := nn.NewBatchNorm2D("bn", 2)
	var frozen *nn.Param
	for _, p := range bn.Params() {
		if p.Frozen {
			frozen = p
			break
		}
	}
	frozen.Grad.Data()[0] = 100
	before := frozen.Value.Data()[0]
	NewSGD(1, 0, 0).Step(bn)
	if frozen.Value.Data()[0] != before {
		t.Fatal("frozen parameter was updated")
	}
}

func TestFitLearnsSeparableTask(t *testing.T) {
	cfg := dataset.Default()
	cfg.Classes = 4
	cfg.TrainPerClass = 40
	cfg.ValPerClass = 10
	ds := dataset.New(cfg)
	r := rng.New(9)
	model := nn.NewSequential("tiny",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc1", cfg.Channels*cfg.Height*cfg.Width, 32, r),
		nn.NewReLU("relu"),
		nn.NewLinear("fc2", 32, cfg.Classes, r),
	)
	res := Fit(model, ds, Config{
		Epochs: 8, BatchSize: 16, LR: 0.05, Momentum: 0.9, StopAtTrainAcc: 0.99,
	})
	if res.TrainAcc < 0.9 {
		t.Fatalf("training failed to learn: train acc %.3f", res.TrainAcc)
	}
	if res.ValAcc < 0.8 {
		t.Fatalf("validation accuracy %.3f implausibly low", res.ValAcc)
	}
}

func TestFitDeterministic(t *testing.T) {
	cfg := dataset.Default()
	cfg.Classes = 3
	cfg.TrainPerClass = 20
	cfg.ValPerClass = 5
	ds := dataset.New(cfg)
	run := func() []float32 {
		r := rng.New(5)
		model := nn.NewSequential("tiny",
			nn.NewFlatten("flat"),
			nn.NewLinear("fc", cfg.Channels*cfg.Height*cfg.Width, cfg.Classes, r),
		)
		Fit(model, ds, Config{Epochs: 2, BatchSize: 10, LR: 0.05, Momentum: 0.9})
		return append([]float32(nil), model.Params()[0].Value.Data()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestEvaluateMatchesManualCount(t *testing.T) {
	r := rng.New(11)
	model := nn.NewSequential("tiny",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc", 4, 2, r),
	)
	x := tensor.Randn(r, 1, 10, 1, 2, 2)
	y := make([]int, 10)
	logits := nn.Forward(nil, model, x)
	want := Accuracy(logits, y)
	if got := Evaluate(model, x, y, 3, nil); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Evaluate = %v, want %v", got, want)
	}
}
