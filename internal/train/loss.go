// Package train provides the optimization substrate used to pre-train the
// experiment models in-process: softmax cross-entropy loss with analytic
// gradient, SGD with momentum and weight decay, and a small training loop.
// The paper supports number-format emulation during training (§V-B); this
// package is what makes that path exercisable in this repository.
package train

import (
	"fmt"
	"math"

	"goldeneye/internal/tensor"
)

// SoftmaxCrossEntropy returns the mean cross-entropy loss of logits (N, K)
// against integer labels, and the gradient of the mean loss with respect to
// the logits: (softmax − onehot)/N.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 || logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("train: logits %v vs %d labels", logits.Shape(), len(labels)))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	probs := logits.SoftmaxRows()
	lse := logits.LogSumExpRows()
	var loss float64
	grad := probs.Scale(1 / float32(n))
	for i, label := range labels {
		if label < 0 || label >= k {
			panic(fmt.Sprintf("train: label %d out of range [0,%d)", label, k))
		}
		loss += lse[i] - float64(logits.At(i, label))
		grad.Data()[i*k+label] -= 1 / float32(n)
	}
	return loss / float64(n), grad
}

// CrossEntropyPerSample returns each sample's cross-entropy loss, the
// quantity the ΔLoss resiliency metric (paper §IV-C) compares between faulty
// and fault-free inferences.
func CrossEntropyPerSample(logits *tensor.Tensor, labels []int) []float64 {
	if logits.Rank() != 2 || logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("train: logits %v vs %d labels", logits.Shape(), len(labels)))
	}
	lse := logits.LogSumExpRows()
	out := make([]float64, len(labels))
	for i, label := range labels {
		out[i] = lse[i] - float64(logits.At(i, label))
		if math.IsNaN(out[i]) {
			// A NaN-corrupted inference has effectively infinite loss; use a
			// large finite sentinel so campaign averages stay meaningful.
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Accuracy returns the top-1 accuracy of logits against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	pred := logits.ArgMaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
