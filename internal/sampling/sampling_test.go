package sampling

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{Fraction: 1},
		{Fraction: 0.1},
		{Fraction: 0.5, Strata: map[string]float64{"sign": 1}},
		{Fraction: 1, Prune: true, Epsilon: 1e-2},
		{Fraction: 0.2, TargetCI: 0.01, CheckEvery: 100},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Plan{
		{},
		{Fraction: -0.1},
		{Fraction: 1.5},
		{Fraction: 0.5, Strata: map[string]float64{"sign": 0}},
		{Fraction: 0.5, Strata: map[string]float64{"sign": 2}},
		{Fraction: 0.5, Epsilon: -1},
		{Fraction: 0.5, TargetCI: -1},
		{Fraction: 0.5, CheckEvery: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan Validate = %v", err)
	}
}

func TestPlanInertAndActive(t *testing.T) {
	if !(&Plan{Fraction: 1}).Inert() {
		t.Error("fraction-1 plan should be inert")
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan should be inactive")
	}
	for _, p := range []*Plan{
		{Fraction: 0.5},
		{Fraction: 1, Prune: true},
		{Fraction: 1, TargetCI: 0.01},
		{Fraction: 1, Strata: map[string]float64{"sign": 1}},
	} {
		if p.Inert() {
			t.Errorf("plan %+v should not be inert", p)
		}
		if !p.Active() {
			t.Errorf("plan %+v should be active", p)
		}
	}
}

func TestBitRole(t *testing.T) {
	fp := numfmt.FP16(true) // 1 sign, 5 exp, 10 mant
	cases := []struct {
		bit  int
		want string
	}{{15, "sign"}, {14, "exponent"}, {10, "exponent"}, {9, "mantissa"}, {0, "mantissa"}}
	for _, c := range cases {
		if got := BitRole(fp, c.bit); got != c.want {
			t.Errorf("fp16 bit %d role = %q, want %q", c.bit, got, c.want)
		}
	}
	fxp := numfmt.FxP16() // 7 int, 8 frac, 1 sign
	if got := BitRole(fxp, 15); got != "sign" {
		t.Errorf("fxp16 bit 15 = %q", got)
	}
	if got := BitRole(fxp, 3); got != "fraction" {
		t.Errorf("fxp16 bit 3 = %q", got)
	}
	if got := BitRole(fxp, 10); got != "integer" {
		t.Errorf("fxp16 bit 10 = %q", got)
	}
	bfp := numfmt.BFPe5m5()
	if got := BitRole(bfp, bfp.BitWidth()-1); got != "sign" {
		t.Errorf("bfp sign bit = %q", got)
	}
	if got := BitRole(bfp, 0); got != "mantissa" {
		t.Errorf("bfp bit 0 = %q", got)
	}
	if got := BitRole(numfmt.Posit8(), 3); got != "code" {
		t.Errorf("posit bit role = %q, want code", got)
	}
}

func TestSpaceClassification(t *testing.T) {
	fp := numfmt.FP16(true)
	sp := NewSpace(fp, inject.SiteValue)
	// Bit-ascending first-sight order: mantissa (bit 0), exponent (bit 10),
	// sign (bit 15).
	want := []string{"mantissa", "exponent", "sign"}
	got := sp.Strata()
	if len(got) != len(want) {
		t.Fatalf("strata = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strata = %v, want %v", got, want)
		}
	}
	if s := sp.StratumOf(inject.Fault{Bit: 15}); sp.Name(s) != "sign" {
		t.Errorf("bit 15 stratum = %q", sp.Name(s))
	}
	if s := sp.StratumOf(inject.Fault{Bit: 2}); sp.Name(s) != "mantissa" {
		t.Errorf("bit 2 stratum = %q", sp.Name(s))
	}

	meta := NewSpace(numfmt.BFPe5m5(), inject.SiteMetadata)
	if len(meta.Strata()) != 1 || meta.Name(0) != "metadata" {
		t.Errorf("metadata space strata = %v", meta.Strata())
	}
	acc := NewSpace(nil, inject.SiteAccum)
	if len(acc.Strata()) != 1 || acc.Name(0) != "accum" {
		t.Errorf("accum space strata = %v", acc.Strata())
	}
	if acc.StratumOf(inject.Fault{Bit: 17}) != 0 {
		t.Error("single-stratum space must classify everything to 0")
	}
}

func TestSelectedDeterministicAndUniform(t *testing.T) {
	const n = 20000
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		count := 0
		for i := 0; i < n; i++ {
			a := Selected(42, i, frac)
			if b := Selected(42, i, frac); a != b {
				t.Fatalf("Selected not deterministic at index %d", i)
			}
			if a {
				count++
			}
		}
		got := float64(count) / n
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("fraction %v selected %v of %d", frac, got, n)
		}
	}
	if !Selected(1, 7, 1.0) {
		t.Error("fraction 1 must select everything")
	}
	if Selected(1, 7, 0) {
		t.Error("fraction 0 must select nothing")
	}
	// Nesting property: a higher fraction's selection need not nest, but
	// different seeds must differ somewhere.
	same := true
	for i := 0; i < 1000; i++ {
		if Selected(1, i, 0.5) != Selected(2, i, 0.5) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical selection")
	}
}

func TestPruneMaskFP16(t *testing.T) {
	fp := numfmt.FP16(true)
	if !Prunable(fp) {
		t.Fatal("fp16 should be prunable")
	}
	// With bounds ±8 and eps 1e-3, the threshold is 8e-3. Only codes that
	// decode inside ±8 seed the analysis (a pre-fault activation is bounded
	// by the calibration profile), so the largest in-bounds exponent is 3
	// and the lowest mantissa bit perturbs by at most 2^(3-10) ≈ 0.0078 —
	// prunable. Bit 1 doubles that and must not be; nor may the sign bit
	// (flipping the sign of the largest in-bounds magnitude moves it 16).
	mask := PruneMask(fp, -8, 8, 1e-3)
	if mask&1 == 0 {
		t.Errorf("mask %#x: lowest mantissa bit should be prunable under ±8 bounds", mask)
	}
	if mask&2 != 0 {
		t.Errorf("mask %#x: mantissa bit 1 perturbs in-bounds values by ~0.0156 > 0.008", mask)
	}
	// Soundness: every masked bit's worst-case perturbation from an
	// in-bounds pre-fault code stays within threshold and finite.
	threshold := 1e-3 * 8
	var meta numfmt.Metadata
	for b := 0; b < fp.BitWidth(); b++ {
		if mask&(1<<uint(b)) == 0 {
			continue
		}
		for c := uint64(0); c < 1<<16; c++ {
			v := fp.FromBits(numfmt.Bits(c), meta)
			if math.IsNaN(v) || v < -8 || v > 8 {
				continue
			}
			w := fp.FromBits(numfmt.Bits(c).Flip(b), meta)
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("bit %d pruned but code %#x flips to a non-finite value", b, c)
			}
			if d := math.Abs(w - v); d > threshold {
				t.Fatalf("bit %d pruned but code %#x perturbs by %v > %v", b, c, d, threshold)
			}
		}
	}
	// Sign bit can never be prunable under finite bounds: flipping the
	// sign of the largest magnitude doubles it.
	if mask&(1<<uint(fp.BitWidth()-1)) != 0 {
		t.Error("sign bit must not be prunable")
	}
}

func TestPruneMaskFxP(t *testing.T) {
	fxp := numfmt.FxP16() // LSB weight 2^-8
	// Layer range ±100 with eps 1e-3 → threshold 0.1: the three lowest
	// fraction bits (weights 1/256, 1/128, 1/64) perturb by at most
	// ~0.0039/0.0078/0.0156 and must be prunable; the sign bit must not.
	mask := PruneMask(fxp, -100, 100, 1e-3)
	for b := 0; b <= 2; b++ {
		if mask&(1<<uint(b)) == 0 {
			t.Errorf("fraction bit %d should be prunable at threshold 0.1", b)
		}
	}
	if mask&(1<<15) != 0 {
		t.Error("sign bit must not be prunable")
	}
}

func TestPruneMaskRejectsMetadataFormats(t *testing.T) {
	for _, f := range []numfmt.Format{numfmt.INT8(), numfmt.BFPe5m5(), numfmt.AFPe5m2(), numfmt.NewLUT(4)} {
		if Prunable(f) {
			t.Errorf("%s carries metadata; must not be prunable", f.Name())
		}
		if m := PruneMask(f, -1, 1, 1e-3); m != 0 {
			t.Errorf("%s prune mask = %#x, want 0", f.Name(), m)
		}
	}
	if m := PruneMask(numfmt.FP16(true), 0, 0, 1e-3); m != 0 {
		t.Error("zero bounds must prune nothing")
	}
	if m := PruneMask(numfmt.FP16(true), math.Inf(-1), math.Inf(1), 1e-3); m != 0 {
		t.Error("non-finite bounds must prune nothing")
	}
}

func TestAllPrunable(t *testing.T) {
	mask := uint64(0b0111)
	if !AllPrunable([]inject.Fault{{Bit: 0}, {Bit: 2}}, mask) {
		t.Error("all-pruned set should be prunable")
	}
	if AllPrunable([]inject.Fault{{Bit: 0}, {Bit: 3}}, mask) {
		t.Error("one unpruned flip must block pruning")
	}
	if AllPrunable([]inject.Fault{{Bit: 1}}, 0) {
		t.Error("empty mask prunes nothing")
	}
}

// addObs folds synthetic observations into a stratum.
func addObs(s *Stratum, mismatches, total int) {
	for i := 0; i < total; i++ {
		s.Executed++
		if i < mismatches {
			s.Mismatch.Add(1)
		} else {
			s.Mismatch.Add(0)
		}
		s.DeltaLoss.Add(float64(i))
	}
}

func TestEstimatorExhaustiveDegenerate(t *testing.T) {
	// One stratum, fully executed: the estimate is the plain rate and the
	// finite-population correction drives the interval to zero.
	r := &Report{Strata: []Stratum{{Name: "all"}}}
	s := &r.Strata[0]
	s.Drawn = 100
	addObs(s, 30, 100)
	if got := r.SDCRate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("SDCRate = %v, want 0.3", got)
	}
	if ci := r.CIHalfWidth(); ci != 0 {
		t.Errorf("exhaustive CI = %v, want 0", ci)
	}
}

func TestEstimatorStratifiedWeights(t *testing.T) {
	// Two strata: 90% of the space at rate 0, 10% at rate 1 → true rate 0.1.
	r := &Report{Strata: []Stratum{{Name: "a"}, {Name: "b"}}}
	a, b := &r.Strata[0], &r.Strata[1]
	a.Drawn, b.Drawn = 900, 100
	addObs(a, 0, 90)
	a.Skipped = 810
	addObs(b, 5, 10)
	b.Skipped = 90
	// (0·900 + 0.5·100) / 1000
	if got := r.SDCRate(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("SDCRate = %v, want 0.05", got)
	}
	if r.FaultSpace() != 1000 || r.ExecutedTotal() != 100 || r.SkippedTotal() != 900 {
		t.Errorf("totals: space=%d exec=%d skip=%d", r.FaultSpace(), r.ExecutedTotal(), r.SkippedTotal())
	}
	if ci := r.CIHalfWidth(); ci <= 0 || math.IsInf(ci, 0) {
		t.Errorf("CI = %v, want finite positive", ci)
	}
}

func TestEstimatorPrunedMassContributesZero(t *testing.T) {
	r := &Report{Strata: []Stratum{{Name: "mantissa"}, {Name: "sign"}}}
	m, s := &r.Strata[0], &r.Strata[1]
	m.Drawn, m.Pruned = 500, 500 // fully pruned stratum: needs no samples
	s.Drawn = 500
	addObs(s, 25, 50)
	s.Skipped = 450
	// Rate: (0·500 + 0.5·500) / 1000 = 0.25.
	if got := r.SDCRate(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("SDCRate = %v, want 0.25", got)
	}
	if ci := r.CIHalfWidth(); math.IsInf(ci, 0) {
		t.Error("fully-pruned stratum must not make the CI infinite")
	}
}

func TestEstimatorUnobservedStratumInfiniteCI(t *testing.T) {
	r := &Report{Strata: []Stratum{{Name: "a"}, {Name: "b"}}}
	r.Strata[0].Drawn = 10
	addObs(&r.Strata[0], 1, 10)
	r.Strata[1].Drawn = 10
	r.Strata[1].Skipped = 10
	if ci := r.CIHalfWidth(); !math.IsInf(ci, 1) {
		t.Errorf("CI = %v, want +Inf with an unobserved stratum", ci)
	}
}

func TestReportMergeMatchesSingleAccumulation(t *testing.T) {
	// Strata accumulated in two shards and merged must carry the same
	// counts, and Welford moments must match the exact merge semantics.
	build := func(seed int64) *Report {
		rng := rand.New(rand.NewSource(seed))
		r := &Report{Strata: []Stratum{{Name: "x"}, {Name: "y"}}}
		for i := 0; i < 200; i++ {
			s := &r.Strata[rng.Intn(2)]
			s.Drawn++
			s.Executed++
			if rng.Float64() < 0.3 {
				s.Mismatch.Add(1)
			} else {
				s.Mismatch.Add(0)
			}
			s.DeltaLoss.Add(rng.Float64())
		}
		return r
	}
	a, b := build(1), build(2)
	merged := a.Clone()
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if merged.FaultSpace() != a.FaultSpace()+b.FaultSpace() {
		t.Error("merged fault space must sum")
	}
	wantN := a.Strata[0].Mismatch.N() + b.Strata[0].Mismatch.N()
	if merged.Strata[0].Mismatch.N() != wantN {
		t.Errorf("merged stratum 0 N = %d, want %d", merged.Strata[0].Mismatch.N(), wantN)
	}
	// Mismatched strata must refuse to merge.
	bad := &Report{Strata: []Stratum{{Name: "x"}}}
	if err := a.Clone().Merge(bad); err == nil {
		t.Error("merge with mismatched strata should fail")
	}
	bad2 := &Report{Strata: []Stratum{{Name: "x"}, {Name: "z"}}}
	if err := a.Clone().Merge(bad2); err == nil {
		t.Error("merge with renamed stratum should fail")
	}
}

func TestReportMergeOrderBitIdentical(t *testing.T) {
	// Merging the same shard set in shard-index order must be bit-identical
	// regardless of which permutation the shards arrived in, provided the
	// caller sorts them first (the shard-merge contract). Here we verify the
	// building block: repeated in-order merges give identical bytes.
	shardFor := func(i int) *Report {
		rng := rand.New(rand.NewSource(int64(i) + 7))
		r := &Report{Strata: []Stratum{{Name: "x"}, {Name: "y"}}}
		for j := 0; j < 50; j++ {
			s := &r.Strata[j%2]
			s.Drawn++
			s.Executed++
			s.Mismatch.Add(float64(rng.Intn(2)))
			s.DeltaLoss.Add(rng.NormFloat64())
		}
		return r
	}
	mergeAll := func() []byte {
		m := shardFor(0).Clone()
		for i := 1; i < 5; i++ {
			if err := m.Merge(shardFor(i)); err != nil {
				t.Fatal(err)
			}
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := mergeAll()
	for trial := 0; trial < 3; trial++ {
		if got := mergeAll(); string(got) != string(first) {
			t.Fatal("in-order merge is not deterministic")
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := &Report{Strata: []Stratum{{Name: "mantissa"}, {Name: "sign"}}, StopIndex: 512}
	r.Strata[0].Drawn = 100
	addObs(&r.Strata[0], 13, 40)
	r.Strata[0].Skipped = 55
	r.Strata[0].Pruned = 5
	r.Strata[1].Drawn = 10
	addObs(&r.Strata[1], 7, 10)
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", b, b2)
	}
	if back.SDCRate() != r.SDCRate() || back.CIHalfWidth() != r.CIHalfWidth() {
		t.Error("derived estimates changed across the wire")
	}
}

func TestPlanJSONStable(t *testing.T) {
	p := &Plan{Fraction: 0.25, Strata: map[string]float64{"sign": 1, "mantissa": 0.1, "exponent": 0.5}, Prune: true, TargetCI: 0.02}
	b1, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("plan encoding unstable:\n%s\n%s", b1, b2)
	}
}

func TestNeymanPlan(t *testing.T) {
	sizes := map[string]int{"mantissa": 800, "exponent": 150, "sign": 50}
	rates := map[string]float64{"mantissa": 0.0, "exponent": 0.4, "sign": 0.9}
	p := NeymanPlan(0.2, sizes, rates)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// High-variance strata get proportionally more of their stratum sampled
	// than the flat-zero-rate one.
	if p.Strata["exponent"] <= p.Strata["mantissa"] {
		t.Errorf("exponent fraction %v should exceed mantissa %v", p.Strata["exponent"], p.Strata["mantissa"])
	}
	// Expected executed count stays near budget·total.
	expected := 0.0
	for name, n := range sizes {
		expected += p.Strata[name] * float64(n)
	}
	if expected > 0.35*1000 {
		t.Errorf("expected executed %v blows the 0.2 budget", expected)
	}
	// Degenerate inputs fall back to a flat plan.
	if p := NeymanPlan(0.1, nil, nil); p.Fraction != 0.1 || len(p.Strata) != 0 {
		t.Errorf("empty sizes: %+v", p)
	}
	if p := NeymanPlan(-1, sizes, rates); p.Validate() != nil {
		t.Error("clamped budget must validate")
	}
}
