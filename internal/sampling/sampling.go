// Package sampling turns exhaustive fault-injection campaigns into
// statistically-driven estimators. It provides the three cooperating pieces
// of a "smart campaign":
//
//   - Fault-space structure: the injection space is partitioned into strata
//     (bit-role equivalence classes of the injection format — sign,
//     exponent, mantissa, … — or a single stratum for metadata and
//     accumulator sites), so sampling effort can be steered toward the bit
//     classes that matter.
//   - Importance sampling: a deterministic per-index selection hash keeps a
//     configurable fraction of each stratum, and the per-stratum Welford
//     moments combine into an unbiased stratified estimate of the campaign's
//     SDC (mismatch) rate with a normal-approximation confidence interval.
//   - Analytic pruning: bit positions whose worst-case value perturbation is
//     negligible against the layer's calibrated activation range are
//     pre-classified as masked and counted analytically, without a forward
//     pass (see PruneMask).
//
// Everything in this package is deterministic and order-stable: the same
// plan, seed, and fault sequence produce the same selection on every
// execution path (serial, batched, parallel, remote, fleet), per-stratum
// moments merge with the same Welford combination the campaign aggregates
// use, and the JSON encodings round-trip bit-exactly.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/numfmt"
)

// DefaultCheckEvery is the sequential-stopping review interval (in global
// injection indices) used when a plan does not set CheckEvery.
const DefaultCheckEvery = 256

// DefaultEpsilon is the pruning tolerance used when a plan does not set
// Epsilon: a bit is prunable when its worst-case decode perturbation is at
// most Epsilon times the layer's calibrated activation magnitude.
const DefaultEpsilon = 1e-3

// Plan configures a sampled campaign. The zero value is invalid; a plan
// must carry a Fraction in (0, 1]. A plan with Fraction 1 and no other
// feature enabled is Inert — campaigns treat it exactly like no plan at
// all, so fraction-1.0 reports stay byte-identical to exhaustive ones.
//
// Plans are part of the campaign wire schema (v4); the JSON encoding is
// byte-stable (map keys marshal sorted).
type Plan struct {
	// Fraction is the default sampled fraction of every stratum, in
	// (0, 1]. 1 means exhaustive.
	Fraction float64 `json:"fraction"`

	// Strata overrides Fraction per stratum name (e.g. "sign": 1,
	// "mantissa": 0.05). Unknown names are legal — they simply match no
	// stratum of the campaign's fault space.
	Strata map[string]float64 `json:"strata,omitempty"`

	// Prune enables analytic fault-space pruning: injections whose every
	// flipped bit is provably negligible against the layer's calibrated
	// activation range are counted as masked without a forward pass.
	// Requires ranger calibration (the campaign's UseRanger bounds) and a
	// metadata-free injection format of at most 16 bits.
	Prune bool `json:"prune,omitempty"`

	// Epsilon is the pruning tolerance (0 = DefaultEpsilon): a bit is
	// prunable when its worst-case decode perturbation is at most
	// Epsilon·max(|lo|, |hi|) of the layer's calibrated bounds.
	Epsilon float64 `json:"epsilon,omitempty"`

	// TargetCI, when positive, enables sequential stopping: the campaign
	// reviews the estimate's 95% confidence half-width every CheckEvery
	// global injection indices and stops at the first review point where
	// it is at most TargetCI.
	TargetCI float64 `json:"target_ci,omitempty"`

	// CheckEvery is the sequential-stopping review interval in global
	// injection indices (0 = DefaultCheckEvery).
	CheckEvery int `json:"check_every,omitempty"`
}

// Validate checks the plan's parameters.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if !(p.Fraction > 0 && p.Fraction <= 1) {
		return fmt.Errorf("sampling: fraction %v outside (0, 1]", p.Fraction)
	}
	for name, f := range p.Strata {
		if !(f > 0 && f <= 1) {
			return fmt.Errorf("sampling: stratum %q fraction %v outside (0, 1]", name, f)
		}
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("sampling: negative pruning epsilon %v", p.Epsilon)
	}
	if p.TargetCI < 0 {
		return fmt.Errorf("sampling: negative target CI %v", p.TargetCI)
	}
	if p.CheckEvery < 0 {
		return fmt.Errorf("sampling: negative check interval %d", p.CheckEvery)
	}
	return nil
}

// Inert reports whether the plan changes nothing relative to an exhaustive
// campaign: fraction 1, no per-stratum overrides, no pruning, no stopping
// target. Campaigns normalize inert plans to nil, so their reports — wire
// bytes included — stay byte-identical to pre-sampling ones.
func (p *Plan) Inert() bool {
	return p.Fraction >= 1 && len(p.Strata) == 0 && !p.Prune && p.TargetCI == 0
}

// Active reports whether p is a non-nil, non-inert plan.
func (p *Plan) Active() bool { return p != nil && !p.Inert() }

// FractionFor returns the sampled fraction of the named stratum.
func (p *Plan) FractionFor(name string) float64 {
	if f, ok := p.Strata[name]; ok {
		return f
	}
	return p.Fraction
}

// Interval returns the sequential-stopping review interval.
func (p *Plan) Interval() int {
	if p.CheckEvery > 0 {
		return p.CheckEvery
	}
	return DefaultCheckEvery
}

// PruneEpsilon returns the pruning tolerance.
func (p *Plan) PruneEpsilon() float64 {
	if p.Epsilon > 0 {
		return p.Epsilon
	}
	return DefaultEpsilon
}

// BitRole names the architectural role of bit position `bit` within a
// format's per-element encoding: "sign", "exponent", "mantissa" for
// FP-family formats, "sign"/"mantissa" for BFP (the shared exponent lives
// in metadata), "sign"/"integer"/"fraction" for fixed point, and "code" for
// formats whose encodings have no positional structure (posit, LNS, LUT).
// These roles are the strata of a value-site fault space.
func BitRole(format numfmt.Format, bit int) string {
	switch f := format.(type) {
	case *numfmt.FP:
		switch {
		case bit == f.BitWidth()-1:
			return "sign"
		case bit >= f.MantBits():
			return "exponent"
		default:
			return "mantissa"
		}
	case *numfmt.AFP:
		switch {
		case bit == f.BitWidth()-1:
			return "sign"
		case bit >= f.MantBits():
			return "exponent"
		default:
			return "mantissa"
		}
	case *numfmt.BFP:
		if bit == f.BitWidth()-1 {
			return "sign"
		}
		return "mantissa"
	case *numfmt.FxP:
		switch {
		case bit == f.BitWidth()-1:
			return "sign"
		case bit < f.Radix():
			return "fraction"
		default:
			return "integer"
		}
	default:
		return "code"
	}
}

// Space is a campaign's stratified fault space: the ordered list of strata
// and the bit-position → stratum mapping faults classify through. Value-site
// spaces stratify by bit role (strata ordered by first appearance from bit
// 0 upward); metadata and accumulator sites are single-stratum spaces (their
// registers have no per-campaign positional roles worth splitting).
type Space struct {
	names []string
	byBit []int
}

// NewSpace builds the fault space of a campaign injecting into format at
// the given site. format may be nil only for accumulator sites (a native
// float32 register).
func NewSpace(format numfmt.Format, site inject.Site) *Space {
	switch site {
	case inject.SiteMetadata:
		return &Space{names: []string{"metadata"}}
	case inject.SiteAccum:
		return &Space{names: []string{"accum"}}
	}
	if format == nil {
		return &Space{names: []string{"value"}}
	}
	sp := &Space{byBit: make([]int, format.BitWidth())}
	index := make(map[string]int)
	for bit := 0; bit < format.BitWidth(); bit++ {
		role := BitRole(format, bit)
		i, ok := index[role]
		if !ok {
			i = len(sp.names)
			index[role] = i
			sp.names = append(sp.names, role)
		}
		sp.byBit[bit] = i
	}
	return sp
}

// Strata returns the stratum names in index order.
func (sp *Space) Strata() []string { return sp.names }

// Name returns the i-th stratum's name.
func (sp *Space) Name(i int) string { return sp.names[i] }

// StratumOf classifies one fault: the stratum of its flipped bit position
// for bit-structured spaces, stratum 0 for single-stratum spaces.
func (sp *Space) StratumOf(f inject.Fault) int {
	if sp.byBit == nil {
		return 0
	}
	if f.Bit < 0 || f.Bit >= len(sp.byBit) {
		return 0
	}
	return sp.byBit[f.Bit]
}

// NewReport returns an empty estimator report with one zeroed stratum per
// stratum of the space, in space order.
func (sp *Space) NewReport() *Report {
	r := &Report{Strata: make([]Stratum, len(sp.names))}
	for i, name := range sp.names {
		r.Strata[i].Name = name
	}
	return r
}

// Selected reports whether injection index is kept by a sampled campaign at
// the given per-stratum fraction. The decision is a pure hash of
// (seed, index) — independent of the fault-drawing RNG stream and of
// execution order — so every path (serial, parallel, sharded, resumed)
// selects the identical subset.
func Selected(seed uint64, index int, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	x := seed ^ (0x9e3779b97f4a7c15 * (uint64(index) + 1))
	// splitmix64 finalizer: avalanches the seed/index combination so
	// consecutive indices decorrelate.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53)
	return u < fraction
}

// Stratum is one stratum's slice of the estimator state: how the stratum's
// drawn fault-space mass was dispatched (pruned analytically, skipped by
// the sampler, executed, or aborted) and the Welford moments of the
// executed injections' outcomes. Counts and moments cover exactly the
// injection indices the producing run owned, so shard reports merge by
// summation.
type Stratum struct {
	Name string `json:"name"`

	// Drawn counts owned fault-space indices classified into this stratum;
	// it always equals Pruned + Skipped + Executed + Aborted.
	Drawn int `json:"drawn"`

	// Pruned counts injections classified as analytically masked (no
	// forward pass; they contribute zero mismatch and zero ΔLoss mass).
	Pruned int `json:"pruned,omitempty"`

	// Skipped counts injections the selection hash left out.
	Skipped int `json:"skipped,omitempty"`

	// Executed counts injections that ran and were observed.
	Executed int `json:"executed"`

	// Aborted counts selected injections whose inference aborted; like the
	// campaign aggregates, the estimator excludes them.
	Aborted int `json:"aborted,omitempty"`

	// Mismatch and DeltaLoss are the Welford moments of the executed
	// injections' outcomes (mismatch as a 0/1 observation).
	Mismatch  metrics.RunningStat `json:"mismatch"`
	DeltaLoss metrics.RunningStat `json:"delta_loss"`
}

// unpruned is the stratum's non-masked fault-space mass — the population
// its executed sample represents.
func (s *Stratum) unpruned() int { return s.Drawn - s.Pruned }

// Report is the stratified estimator carried by a sampled campaign's
// report: per-stratum accounting plus the derived SDC-rate estimate and
// confidence interval. The derived quantities are methods, not fields, so
// they are always consistent with the counts (and so the wire encoding
// never has to carry non-finite JSON values).
type Report struct {
	Strata []Stratum `json:"strata"`

	// StopIndex is the global injection index at which sequential stopping
	// ended the campaign (a CheckEvery boundary), or 0 when the campaign
	// ran through its full selection.
	StopIndex int `json:"stop_index,omitempty"`
}

// stratumIndex returns the position of the named stratum, or -1.
func (r *Report) stratumIndex(name string) int {
	for i := range r.Strata {
		if r.Strata[i].Name == name {
			return i
		}
	}
	return -1
}

// FaultSpace returns the fault-space mass this report covers: the sum of
// drawn counts across strata. For an unsharded campaign that is the full
// injection count; for one shard it is the shard's stride-slice size, so
// merged shard reports sum back to the campaign total.
func (r *Report) FaultSpace() int {
	n := 0
	for i := range r.Strata {
		n += r.Strata[i].Drawn
	}
	return n
}

// ExecutedTotal returns the number of injections that ran and were
// observed.
func (r *Report) ExecutedTotal() int {
	n := 0
	for i := range r.Strata {
		n += r.Strata[i].Executed
	}
	return n
}

// AbortedTotal returns the number of selected injections whose inference
// aborted; they execute but contribute no observations to the moments.
func (r *Report) AbortedTotal() int {
	n := 0
	for i := range r.Strata {
		n += r.Strata[i].Aborted
	}
	return n
}

// PrunedTotal returns the number of injections counted analytically.
func (r *Report) PrunedTotal() int {
	n := 0
	for i := range r.Strata {
		n += r.Strata[i].Pruned
	}
	return n
}

// SkippedTotal returns the number of injections the selection hash left
// out.
func (r *Report) SkippedTotal() int {
	n := 0
	for i := range r.Strata {
		n += r.Strata[i].Skipped
	}
	return n
}

// SDCRate returns the stratified estimate of the campaign's mismatch (SDC)
// rate over the covered fault space: each stratum contributes its observed
// mismatch mean weighted by its unpruned mass, and pruned mass contributes
// zero (that is what pruning proved). The estimator is unbiased within each
// stratum under the uniform selection hash.
func (r *Report) SDCRate() float64 {
	return r.weightedMean(func(s *Stratum) float64 { return s.Mismatch.Mean() })
}

// MeanDeltaLoss returns the stratified estimate of the campaign's mean
// ΔLoss over the covered fault space, with pruned mass contributing zero.
func (r *Report) MeanDeltaLoss() float64 {
	return r.weightedMean(func(s *Stratum) float64 { return s.DeltaLoss.Mean() })
}

func (r *Report) weightedMean(mean func(*Stratum) float64) float64 {
	d := r.FaultSpace()
	if d == 0 {
		return 0
	}
	sum := 0.0
	for i := range r.Strata {
		s := &r.Strata[i]
		if u := s.unpruned(); u > 0 && s.Executed > 0 {
			sum += float64(u) * mean(s)
		}
	}
	return sum / float64(d)
}

// smallSampleN is the executed-count threshold below which a stratum's
// variance is floored at the worst-case Bernoulli variance (0.25): tiny
// samples routinely observe zero variance, and an honest interval must not
// collapse on them.
const smallSampleN = 8

// Variance returns the variance of the SDCRate estimator under stratified
// sampling: Σ (Uₛ/D)² · vₛ/nₛ · FPC, where Uₛ is the stratum's unpruned
// mass, D the covered fault space, vₛ the stratum's sample variance
// (floored at 0.25 below smallSampleN observations), nₛ its executed
// count, and FPC the finite-population correction (Uₛ−nₛ)/(Uₛ−1) that
// drives the interval to zero when a stratum is sampled exhaustively. A
// stratum with unpruned mass but no observations yet makes the variance
// +Inf — the interval honestly reports that part of the space is unmeasured.
func (r *Report) Variance() float64 {
	d := r.FaultSpace()
	if d == 0 {
		return 0
	}
	v := 0.0
	for i := range r.Strata {
		s := &r.Strata[i]
		u := s.unpruned()
		if u <= 0 {
			continue
		}
		n := s.Executed
		if n == 0 {
			return math.Inf(1)
		}
		sv := s.Mismatch.Variance()
		if n < smallSampleN && sv < 0.25 {
			sv = 0.25
		}
		fpc := 1.0
		if n >= u {
			fpc = 0
		} else if u > 1 {
			fpc = float64(u-n) / float64(u-1)
		}
		w := float64(u) / float64(d)
		v += w * w * sv / float64(n) * fpc
	}
	return v
}

// CIHalfWidth returns the half-width of the 95% confidence interval of
// SDCRate under the normal approximation (+Inf while any unpruned stratum
// is unobserved).
func (r *Report) CIHalfWidth() float64 {
	return 1.96 * math.Sqrt(r.Variance())
}

// Merge folds another shard's estimator state into r, summing counts and
// combining the Welford moments in call order — the same merge-order
// contract the campaign's aggregate moments follow, so shard reports merged
// in shard-index order are bit-identical to the single-node parallel run at
// workers = shard count. The two reports must describe the same strata in
// the same order.
func (r *Report) Merge(o *Report) error {
	if o == nil {
		return nil
	}
	if len(r.Strata) != len(o.Strata) {
		return fmt.Errorf("sampling: merging reports with %d vs %d strata", len(r.Strata), len(o.Strata))
	}
	for i := range r.Strata {
		s, os := &r.Strata[i], &o.Strata[i]
		if s.Name != os.Name {
			return fmt.Errorf("sampling: stratum %d is %q in one report, %q in the other", i, s.Name, os.Name)
		}
		s.Drawn += os.Drawn
		s.Pruned += os.Pruned
		s.Skipped += os.Skipped
		s.Executed += os.Executed
		s.Aborted += os.Aborted
		s.Mismatch.Merge(os.Mismatch)
		s.DeltaLoss.Merge(os.DeltaLoss)
	}
	if o.StopIndex > r.StopIndex {
		r.StopIndex = o.StopIndex
	}
	return nil
}

// Clone returns a deep copy of the report.
func (r *Report) Clone() *Report {
	if r == nil {
		return nil
	}
	c := &Report{Strata: make([]Stratum, len(r.Strata)), StopIndex: r.StopIndex}
	copy(c.Strata, r.Strata)
	return c
}

// NeymanPlan builds a rate-steered sampling plan from pilot observations:
// per-stratum fault-space sizes and observed mismatch rates. Allocation
// follows Neyman's rule — sampling effort proportional to Nₛ·σₛ, with
// σₛ = √(pₛ(1−pₛ)) floored so no stratum starves — scaled so the expected
// executed count is budget times the total fault space, and every fraction
// clamped to (0, 1]. This is how a cheap pilot campaign (for example
// exper.BitSensitivity rows) steers a production campaign's budget toward
// the vulnerable bit classes.
func NeymanPlan(budget float64, sizes map[string]int, rates map[string]float64) *Plan {
	if budget <= 0 {
		budget = 0.1
	}
	if budget > 1 {
		budget = 1
	}
	names := make([]string, 0, len(sizes))
	total := 0
	for name, n := range sizes {
		if n > 0 {
			names = append(names, name)
			total += n
		}
	}
	sort.Strings(names)
	if total == 0 {
		return &Plan{Fraction: budget}
	}
	// σ floor: even a stratum whose pilot saw zero mismatches keeps a
	// share of the budget (its pilot may simply have been too small).
	const sigmaFloor = 0.05
	weight := make(map[string]float64, len(names))
	wsum := 0.0
	for _, name := range names {
		p := rates[name]
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		sigma := math.Sqrt(p * (1 - p))
		if sigma < sigmaFloor {
			sigma = sigmaFloor
		}
		w := float64(sizes[name]) * sigma
		weight[name] = w
		wsum += w
	}
	target := budget * float64(total)
	plan := &Plan{Fraction: budget, Strata: make(map[string]float64, len(names))}
	for _, name := range names {
		// Desired executed count for the stratum, as a fraction of it.
		f := target * weight[name] / wsum / float64(sizes[name])
		if f > 1 {
			f = 1
		}
		if f < 1e-4 {
			f = 1e-4
		}
		plan.Strata[name] = f
	}
	return plan
}
