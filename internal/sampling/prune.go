package sampling

import (
	"math"

	"goldeneye/internal/inject"
	"goldeneye/internal/numfmt"
)

// MaxPruneBits bounds the brute-force bit-perturbation analysis: formats
// wider than this are never pruned (the 2^width code sweep would be too
// expensive, and every format family in the paper fits).
const MaxPruneBits = 16

// Prunable reports whether the format is eligible for analytic pruning:
// per-bit perturbation analysis requires a metadata-free encoding (a flip
// in an INT/BFP/AFP/LUT value interacts with tensor-level metadata the
// per-code sweep cannot see) of at most MaxPruneBits bits.
func Prunable(f numfmt.Format) bool {
	return f != nil && inject.MetaBitWidth(f) == 0 && f.BitWidth() <= MaxPruneBits
}

// PruneMask computes the set of analytically-masked bit positions of a
// value-site fault space: bit b is set in the returned mask when flipping
// bit b of any code whose decoded value lies inside the target layer's
// calibrated activation bounds [lo, hi] (the ranger profile detect
// campaigns already compute) perturbs that value by at most
// eps·max(|lo|, |hi|). A fault confined to such a bit moves the activation
// by a negligible fraction of the layer's dynamic range, so the campaign
// counts it as masked without running the inference — the estimator
// assigns it zero mismatch and zero ΔLoss mass, exactly what an executed
// injection of a pruned bit would contribute up to the eps tolerance.
//
// Only in-bounds codes seed the sweep: the pre-fault value is an activation
// the layer actually produced, and the calibration profile bounds those —
// the same trust the ranger detector itself places in its profile. Codes
// outside the bounds (including the format's non-finite encodings) cannot
// occur as pre-fault values; the FP-family max-exponent codes that decode
// to ±Inf/NaN therefore no longer poison every bit. A flip that *lands* on
// a non-finite or wildly out-of-range value from an in-bounds code still
// makes its bit unprunable.
//
// The analysis brute-forces all 2^width codes per bit: max over in-bounds
// codes c of |decode(c ^ 1<<b) − decode(c)|. Returns 0 (nothing prunable)
// for formats Prunable rejects, when the bounds carry no signal (max
// magnitude 0 or non-finite), or when no code decodes in bounds.
func PruneMask(f numfmt.Format, lo, hi, eps float64) uint64 {
	if !Prunable(f) || eps <= 0 || lo > hi {
		return 0
	}
	scale := math.Max(math.Abs(lo), math.Abs(hi))
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return 0
	}
	threshold := eps * scale
	width := f.BitWidth()
	codes := uint64(1) << uint(width)
	var meta numfmt.Metadata
	// Decode the whole code space once; the per-bit pass then reads pairs.
	decoded := make([]float64, codes)
	inBounds := make([]bool, codes)
	any := false
	for c := uint64(0); c < codes; c++ {
		v := f.FromBits(numfmt.Bits(c), meta)
		decoded[c] = v
		if !math.IsNaN(v) && v >= lo && v <= hi {
			inBounds[c] = true
			any = true
		}
	}
	if !any {
		return 0
	}
	var mask uint64
	for b := 0; b < width; b++ {
		worst := 0.0
		for c := uint64(0); c < codes; c++ {
			if !inBounds[c] {
				continue
			}
			w := decoded[c^(1<<uint(b))]
			if math.IsNaN(w) || math.IsInf(w, 0) {
				worst = math.Inf(1)
				break
			}
			if d := math.Abs(w - decoded[c]); d > worst {
				worst = d
			}
		}
		if worst <= threshold {
			mask |= 1 << uint(b)
		}
	}
	return mask
}

// AllPrunable reports whether every flip of one injection lands on a
// pruned bit — the condition for counting the whole injection analytically
// (a multi-bit injection is masked only if all of its flips are).
func AllPrunable(faults []inject.Fault, mask uint64) bool {
	if mask == 0 {
		return false
	}
	for _, f := range faults {
		if f.Bit < 0 || f.Bit >= 64 || mask&(1<<uint(f.Bit)) == 0 {
			return false
		}
	}
	return true
}
