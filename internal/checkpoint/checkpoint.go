// Package checkpoint persists per-cell sweep state so interrupted
// experiment campaigns can resume where they stopped. A "cell" is one
// campaign of a figure sweep (one model × format × layer × site
// combination); its checkpoint records the merged aggregates, how many
// injections were executed, and a hash of the configuration that produced
// them. Because the fault sequence is drawn deterministically from the
// campaign seed, a resumed cell replays the already-executed prefix and
// its final report is bit-identical to an uninterrupted run's.
//
// Files are one JSON document per cell, written atomically (temp file +
// rename) so a kill mid-write can never leave a truncated checkpoint.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"goldeneye/internal/metrics"
)

// Cell is the persisted state of one sweep cell.
type Cell struct {
	// Key identifies the cell within its sweep (e.g.
	// "fig7/mlp/fp32/L03/value"). It is stored in the file as well as the
	// filename so hash-truncated filenames cannot silently collide.
	Key string `json:"key"`

	// ConfigHash fingerprints the campaign configuration that produced
	// this state. A mismatch on load means the sweep parameters changed;
	// the stale cell is ignored rather than resumed.
	ConfigHash uint64 `json:"config_hash"`

	// Seed is the campaign RNG seed, recorded so the deterministic fault
	// prefix can be replayed.
	Seed uint64 `json:"seed"`

	// Planned is the campaign's total injection count; Completed is how
	// many were executed (recorded + aborted) before the checkpoint.
	Planned   int  `json:"planned"`
	Completed int  `json:"completed"`
	Done      bool `json:"done"`

	// Result aggregates the executed prefix; Detected and Aborted carry
	// the report fields outside metrics.CampaignResult.
	Result   metrics.CampaignResult `json:"result"`
	Detected int                    `json:"detected"`
	Aborted  int                    `json:"aborted"`

	// Recovered and Detectors carry the detection-pipeline aggregates of
	// campaigns run with detectors configured; both are absent from (and
	// ignored in) cells persisted without a pipeline, so pre-detector
	// checkpoints load unchanged.
	Recovered int                              `json:"recovered,omitempty"`
	Detectors map[string]metrics.DetectorStats `json:"detectors,omitempty"`

	// Config optionally embeds the producing configuration in its wire
	// encoding. The campaign service stores the fully resolved config here
	// so a cache hit can return it verbatim (e.g. with the server-selected
	// injection layer, not the submitted -1 sentinel); sweep cells leave it
	// empty.
	Config json.RawMessage `json:"config,omitempty"`
}

// Sidecar returns a path alongside the store's cells for auxiliary
// artifacts keyed like cells — e.g. a detector's serialized calibration
// (ranger bounds) — with the given extension (".ranger.json").
func (s *Store) Sidecar(key, ext string) string {
	return strings.TrimSuffix(s.path(key), ".json") + ext
}

// Store reads and writes cell checkpoints under one directory.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the checkpoint store at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path maps a cell key to its checkpoint filename: the key sanitized to a
// filesystem-safe slug (capped in length), plus a short hash suffix that
// keeps distinct keys distinct after sanitization/truncation.
func (s *Store) path(key string) string {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, key)
	if len(slug) > 80 {
		slug = slug[:80]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return filepath.Join(s.dir, fmt.Sprintf("%s-%08x.json", slug, h.Sum32()))
}

// Load returns the checkpoint for key, or nil if none exists. A file whose
// stored key does not match (filename-hash collision) or that fails to
// parse (truncated by a crash predating atomic writes, manual edits) is
// treated as absent rather than poisoning the sweep.
func (s *Store) Load(key string) (*Cell, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load %q: %w", key, err)
	}
	var c Cell
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, nil
	}
	if c.Key != key {
		return nil, nil
	}
	return &c, nil
}

// LoadMatching returns the checkpoint for key only when it exists and was
// produced by the configuration fingerprinted by hash; a missing, stale, or
// corrupt cell comes back nil. It is the lookup both the experiment sweeps
// and the campaign service's result cache use, so "same parameters resume /
// hit, changed parameters re-run" behaves identically everywhere.
func (s *Store) LoadMatching(key string, hash uint64) (*Cell, error) {
	cell, err := s.Load(key)
	if err != nil || cell == nil {
		return nil, err
	}
	if cell.ConfigHash != hash {
		return nil, nil
	}
	return cell, nil
}

// Save atomically writes the checkpoint for c.Key: the JSON is written to a
// temp file in the store directory and renamed into place, so a concurrent
// reader or a kill mid-write sees either the old cell or the new one, never
// a torn file.
func (s *Store) Save(c *Cell) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: save %q: %w", c.Key, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: save %q: %w", c.Key, err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("checkpoint: save %q: %w", c.Key, werr)
	}
	if err := os.Rename(tmp.Name(), s.path(c.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: save %q: %w", c.Key, err)
	}
	return nil
}

// Clear removes every checkpoint in the store (a fresh, non-resumed sweep
// must not inherit cells from a previous run with the same directory).
func (s *Store) Clear() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("checkpoint: clear: %w", err)
		}
	}
	return nil
}

// HashConfig fingerprints an arbitrary tuple of configuration values with
// FNV-1a over their %v renderings. It is not cryptographic — it only needs
// to distinguish "same sweep parameters" from "sweep was re-run with
// different flags", in which case the stale checkpoint is discarded.
func HashConfig(parts ...interface{}) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x00", p)
	}
	return h.Sum64()
}
