package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldeneye/internal/metrics"
)

func sampleCell(key string) *Cell {
	c := &Cell{
		Key:        key,
		ConfigHash: HashConfig("fp32", 3, true),
		Seed:       42,
		Planned:    100,
		Completed:  37,
		Detected:   4,
		Aborted:    2,
	}
	for i := 0; i < 37; i++ {
		c.Result.Record(i%3 == 0, float64(i)*0.125+0.01, i%7 == 0)
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleCell("fig7/mlp/fp32/L03/value")
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(want.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("Load returned nil for saved cell")
	}
	if got.Key != want.Key || got.ConfigHash != want.ConfigHash || got.Seed != want.Seed ||
		got.Planned != want.Planned || got.Completed != want.Completed ||
		got.Detected != want.Detected || got.Aborted != want.Aborted {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	// The Welford accumulator must survive bit-exactly: resumed campaigns
	// continue Add() on the restored state and compare reports with ==.
	if got.Result.Injections != want.Result.Injections ||
		got.Result.Mismatches != want.Result.Mismatches ||
		got.Result.NonFinite != want.Result.NonFinite {
		t.Fatalf("result counts mismatch: got %+v want %+v", got.Result, want.Result)
	}
	if got.Result.DeltaLoss.Mean() != want.Result.DeltaLoss.Mean() ||
		got.Result.DeltaLoss.Variance() != want.Result.DeltaLoss.Variance() ||
		got.Result.MismatchStat.Mean() != want.Result.MismatchStat.Mean() {
		t.Fatal("RunningStat JSON round trip is not bit-exact")
	}
}

func TestRunningStatContinuationAfterRoundTrip(t *testing.T) {
	// Serial continuation after persistence must equal an uninterrupted
	// accumulation — this is what makes resumed reports bit-identical.
	xs := []float64{0.1, 2.5, 0.3333333333333333, 7.25, 1e-9, 30, 0.7}
	var full metrics.RunningStat
	for _, x := range xs {
		full.Add(x)
	}

	var prefix metrics.RunningStat
	for _, x := range xs[:4] {
		prefix.Add(x)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := &Cell{Key: "k", Result: metrics.CampaignResult{DeltaLoss: prefix}}
	if err := st.Save(cell); err != nil {
		t.Fatal(err)
	}
	loaded, err := st.Load("k")
	if err != nil || loaded == nil {
		t.Fatalf("load: %v %v", loaded, err)
	}
	resumed := loaded.Result.DeltaLoss
	for _, x := range xs[4:] {
		resumed.Add(x)
	}
	if resumed.Mean() != full.Mean() || resumed.Variance() != full.Variance() || resumed.N() != full.N() {
		t.Fatalf("continuation diverged: resumed mean=%v var=%v, full mean=%v var=%v",
			resumed.Mean(), resumed.Variance(), full.Mean(), full.Variance())
	}
}

func TestLoadMissingReturnsNil(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := st.Load("never/saved")
	if err != nil || c != nil {
		t.Fatalf("want (nil, nil) for missing cell, got (%v, %v)", c, err)
	}
}

func TestLoadCorruptTreatedAsAbsent(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleCell("cell")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("cell"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := st.Load("cell")
	if err != nil || c != nil {
		t.Fatalf("corrupt checkpoint should read as absent, got (%v, %v)", c, err)
	}
}

func TestKeySanitizationKeepsKeysDistinct(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Both keys sanitize to the same slug; the hash suffix must keep the
	// files distinct and the stored key must disambiguate on load.
	a, b := "fig7/mlp fp32", "fig7/mlp:fp32"
	ca, cb := sampleCell(a), sampleCell(b)
	cb.Completed = 99
	if err := st.Save(ca); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(cb); err != nil {
		t.Fatal(err)
	}
	ga, err := st.Load(a)
	if err != nil || ga == nil || ga.Completed != ca.Completed {
		t.Fatalf("key %q: got %+v err %v", a, ga, err)
	}
	gb, err := st.Load(b)
	if err != nil || gb == nil || gb.Completed != 99 {
		t.Fatalf("key %q: got %+v err %v", b, gb, err)
	}
	name := filepath.Base(st.path(a))
	if strings.ContainsAny(name, " :/") {
		t.Fatalf("unsanitized filename %q", name)
	}
}

func TestClearRemovesCells(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(sampleCell("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Clear(); err != nil {
		t.Fatal(err)
	}
	c, err := st.Load("x")
	if err != nil || c != nil {
		t.Fatalf("cell survived Clear: (%v, %v)", c, err)
	}
}

func TestHashConfigDistinguishesParameters(t *testing.T) {
	base := HashConfig("fp16", 3, 1000, uint64(7))
	if base != HashConfig("fp16", 3, 1000, uint64(7)) {
		t.Fatal("HashConfig is not deterministic")
	}
	for _, other := range []uint64{
		HashConfig("fp16", 4, 1000, uint64(7)),
		HashConfig("fp32", 3, 1000, uint64(7)),
		HashConfig("fp16", 3, 1001, uint64(7)),
		HashConfig("fp16", 3, 1000, uint64(8)),
		// Separator test: ("ab","c") must differ from ("a","bc").
		HashConfig("ab", "c"),
	} {
		if other == base && other != HashConfig("ab", "c") {
			t.Fatalf("hash collision on differing config: %x", other)
		}
	}
	if HashConfig("ab", "c") == HashConfig("a", "bc") {
		t.Fatal("HashConfig concatenates fields without separation")
	}
}
