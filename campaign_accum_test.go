package goldeneye_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"goldeneye"
	"goldeneye/internal/inject"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
)

// mixedAccumAssignment is the walkthrough configuration of the docs:
// bfloat16 weights, FP8 activations, FP32 accumulate.
func mixedAccumAssignment() *goldeneye.FormatAssignment {
	return &goldeneye.FormatAssignment{Default: goldeneye.RoleFormats{
		Weights:     numfmt.BFloat16(true),
		Activations: numfmt.FP8E4M3(true),
		Accumulator: numfmt.FP32(true),
	}}
}

// The accumulator-site guarantee: under one seed, serial, batched, and
// parallel campaigns agree bit for bit — integer aggregates, Welford
// moments (serial/batched), and every trace entry.
func TestAccumCampaignBitIdenticalAcrossPaths(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := goldeneye.CampaignConfig{
		Assignment: mixedAccumAssignment(),
		Site:       goldeneye.SiteAccum,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[1],
		Injections: 23, // not a batch multiple: exercises the ragged tail
		Seed:       17,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
		KeepTrace:  true,
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Mismatches == 0 && serial.MeanDeltaLoss() == 0 {
		t.Fatal("accumulator faults had no observable effect at all; injection is likely not reaching the reduction")
	}

	bcfg := cfg
	bcfg.BatchSize = 5
	batched, err := sim.RunCampaign(context.Background(), bcfg)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "accum batched", batched, serial)

	par, err := goldeneye.RunCampaignParallel(context.Background(), bcfg, 3, mlpBuilder(t))
	if err != nil {
		t.Fatal(err)
	}
	if par.Injections != serial.Injections || par.Mismatches != serial.Mismatches ||
		par.NonFinite != serial.NonFinite || par.Detected != serial.Detected {
		t.Fatalf("accum parallel aggregates diverge: %+v vs %+v", par.CampaignResult, serial.CampaignResult)
	}
	for i := range serial.Trace {
		a, b := par.Trace[i], serial.Trace[i]
		if a.Fault != b.Fault || a.Sample != b.Sample || a.Mismatch != b.Mismatch || a.DeltaLoss != b.DeltaLoss {
			t.Fatalf("accum parallel trace diverges at %d: %+v vs %+v", i, a, b)
		}
	}
}

// Without an accumulator role the faults land on the native float32
// register — the legacy-format campaign shape with -site accum.
func TestAccumCampaignNativeRegister(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(6)
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP16(true),
		EmulateNetwork: true,
		Site:           goldeneye.SiteAccum,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[0],
		Injections:     16,
		Seed:           5,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		KeepTrace:      true,
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.BatchSize = 4
	batched, err := sim.RunCampaign(context.Background(), bcfg)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "accum native register", batched, serial)
	for _, out := range serial.Trace {
		f := out.Fault
		if f.Site != goldeneye.SiteAccum || f.Bit < 0 || f.Bit >= 32 {
			t.Fatalf("native-register fault outside float32 bit range: %+v", f)
		}
		if f.Step < 0 {
			t.Fatalf("fault drew a negative reduction step: %+v", f)
		}
	}
}

// Accumulator-site campaigns on structurally unsuitable configurations are
// rejected up front with a typed *ConfigError.
func TestAccumCampaignValidation(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(4)
	base := goldeneye.CampaignConfig{
		Assignment: mixedAccumAssignment(),
		Site:       goldeneye.SiteAccum,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[0],
		Injections: 4,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
	}

	// A layer without a GEMM has no accumulator: the error is typed and
	// names the offending layer's kind.
	var reluLayer = -1
	for _, l := range sim.Layers() {
		if l.Kind == nn.KindActivation {
			reluLayer = l.Index
			break
		}
	}
	if reluLayer < 0 {
		t.Fatal("mlp has no activation layer?")
	}
	noGEMM := base
	noGEMM.Layer = reluLayer
	_, err := sim.RunCampaign(context.Background(), noGEMM)
	var cfgErr *goldeneye.ConfigError
	if err == nil || !errors.As(err, &cfgErr) || cfgErr.Field != "Layer" ||
		!strings.Contains(err.Error(), "GEMM-backed") || !strings.Contains(err.Error(), "activation") {
		t.Fatalf("non-GEMM layer: got %v, want *ConfigError{Layer} naming the layer kind", err)
	}

	weight := base
	weight.Target = goldeneye.TargetWeight
	if _, err := sim.RunCampaign(context.Background(), weight); err == nil ||
		!errors.As(err, &cfgErr) || cfgErr.Field != "Target" {
		t.Fatalf("weight target: got %v, want *ConfigError{Target}", err)
	}

	burst := base
	burst.FaultKind = inject.KindBurst
	if _, err := sim.RunCampaign(context.Background(), burst); err == nil ||
		!errors.As(err, &cfgErr) || cfgErr.Field != "FaultKind" {
		t.Fatalf("burst kind: got %v, want *ConfigError{FaultKind}", err)
	}

	meta := base
	meta.Assignment = &goldeneye.FormatAssignment{Default: goldeneye.RoleFormats{
		Accumulator: numfmt.INT8(), // scale metadata: no register analogue
	}}
	if _, err := sim.RunCampaign(context.Background(), meta); err == nil ||
		!errors.As(err, &cfgErr) || cfgErr.Field != "Assignment" {
		t.Fatalf("metadata accumulator: got %v, want *ConfigError{Assignment}", err)
	}
}

// ABFT checks the GEMM invariant itself, so it must catch a sizable share
// of accumulator-interior corruptions; detection must also survive the
// batched path bit-identically.
func TestAccumCampaignABFTDetection(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	dets, err := goldeneye.ParseDetectors("abft")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldeneye.CampaignConfig{
		Assignment: mixedAccumAssignment(),
		Site:       goldeneye.SiteAccum,
		Target:     goldeneye.TargetNeuron,
		Layer:      sim.InjectableLayers()[1],
		Injections: 40,
		Seed:       29,
		Pool:       &goldeneye.EvalPool{X: x, Y: y},
		Detectors:  dets,
		KeepTrace:  true,
	}
	serial, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Detected == 0 {
		t.Fatal("ABFT detected no accumulator faults at all")
	}
	// Every corrupting injection perturbs a GEMM output, which is exactly
	// the invariant ABFT checks: coverage of mismatching runs should be
	// substantial (well above a coin flip on this tiny model).
	var mismatchedDetected, mismatched int
	for _, out := range serial.Trace {
		if out.Mismatch {
			mismatched++
			if out.Detected {
				mismatchedDetected++
			}
		}
	}
	if mismatched > 0 && mismatchedDetected*2 < mismatched {
		t.Fatalf("ABFT caught only %d/%d mismatching accumulator faults", mismatchedDetected, mismatched)
	}

	bcfg := cfg
	bcfg.BatchSize = 8
	batched, err := sim.RunCampaign(context.Background(), bcfg)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "accum abft batched", batched, serial)
}
