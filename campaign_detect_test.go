package goldeneye_test

import (
	"context"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/telemetry"
)

// detectConfig is the shared campaign shape of the detection tests: FP16
// exponent-heavy value faults at a mid-network layer with the named
// detector pipeline armed.
func detectConfig(t *testing.T, sim *goldeneye.Simulator, x *goldeneye.Tensor, y []int, injections int, detectors, recovery string) goldeneye.CampaignConfig {
	t.Helper()
	cfg := goldeneye.CampaignConfig{
		Format:         numfmt.FP16(true),
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     injections,
		Seed:           29,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
	}
	if detectors != "" {
		specs, err := goldeneye.ParseDetectors(detectors)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Detectors = specs
		pol, err := goldeneye.ParseRecovery(recovery)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Recovery = pol
	}
	return cfg
}

// detectTraceIdentical extends reportsIdentical to the detection fields of
// the trace: which detectors fired, whether recovery succeeded, and the
// first non-finite layer attribution.
func detectTraceIdentical(t *testing.T, label string, got, want *goldeneye.CampaignReport) {
	t.Helper()
	reportsIdentical(t, label, got, want)
	if got.Recovered != want.Recovered {
		t.Fatalf("%s: Recovered %d vs %d", label, got.Recovered, want.Recovered)
	}
	for name, w := range want.PerDetector {
		g := got.PerDetector[name]
		if g != w {
			t.Fatalf("%s: PerDetector[%s] %+v vs %+v", label, name, g, w)
		}
	}
	for i := range want.Trace {
		a, b := got.Trace[i], want.Trace[i]
		if a.Recovered != b.Recovered || a.FirstNonFiniteLayer != b.FirstNonFiniteLayer ||
			len(a.DetectedBy) != len(b.DetectedBy) {
			t.Fatalf("%s: detection trace diverges at %d:\n got %+v\nwant %+v", label, i, a, b)
		}
		for j := range b.DetectedBy {
			if a.DetectedBy[j] != b.DetectedBy[j] {
				t.Fatalf("%s: DetectedBy diverges at %d: %v vs %v", label, i, a.DetectedBy, b.DetectedBy)
			}
		}
	}
}

// The promoted ranger detector under PolicyClamp must deliver the exact
// damage-mitigation aggregates the legacy UseRanger path did: both
// calibrate the same per-layer envelope from fault-free pool activations,
// and the row-confined clamp is a fixed point on in-range values.
func TestDetectRangerMatchesLegacyRanger(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)

	legacy := detectConfig(t, sim, x, y, 60, "", "")
	legacy.UseRanger = true
	legacy.KeepTrace = true
	want, err := sim.RunCampaign(context.Background(), legacy)
	if err != nil {
		t.Fatal(err)
	}

	promoted := detectConfig(t, sim, x, y, 60, "ranger", "clamp")
	promoted.KeepTrace = true
	got, err := sim.RunCampaign(context.Background(), promoted)
	if err != nil {
		t.Fatal(err)
	}

	if got.Injections != want.Injections || got.Mismatches != want.Mismatches ||
		got.NonFinite != want.NonFinite {
		t.Fatalf("aggregates diverge from legacy ranger: %+v vs %+v",
			got.CampaignResult, want.CampaignResult)
	}
	if got.DeltaLoss != want.DeltaLoss || got.MismatchStat != want.MismatchStat {
		t.Fatalf("Welford moments diverge from legacy ranger")
	}
	for i := range want.Trace {
		a, b := got.Trace[i], want.Trace[i]
		if a.Mismatch != b.Mismatch || a.DeltaLoss != b.DeltaLoss || a.NonFinite != b.NonFinite {
			t.Fatalf("trace diverges from legacy ranger at %d: %+v vs %+v", i, a, b)
		}
	}
	if got.Detected == 0 {
		t.Fatal("promoted ranger should report detections the legacy path never surfaced")
	}
}

// Batched campaigns with the full pipeline armed must stay bit-identical to
// serial ones, including every detection-side field.
func TestDetectSerialBatchedBitIdentical(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	for _, recovery := range []string{"none", "clamp", "reexecute"} {
		serial := detectConfig(t, sim, x, y, 30, "ranger,sentinel,dmr,abft", recovery)
		serial.KeepTrace = true
		want, err := sim.RunCampaign(context.Background(), serial)
		if err != nil {
			t.Fatal(err)
		}
		batched := serial
		batched.BatchSize = 4
		got, err := sim.RunCampaign(context.Background(), batched)
		if err != nil {
			t.Fatal(err)
		}
		detectTraceIdentical(t, "batched/"+recovery, got, want)
	}
}

// Resumed campaigns preserve Detected/Recovered bit-identically: the
// prefix report's detection aggregates carry forward through
// CampaignResume on the serial path and the batched path.
func TestDetectResumeBitIdentical(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	for _, batch := range []int{0, 4} {
		full := detectConfig(t, sim, x, y, 40, "ranger,sentinel,dmr", "reexecute")
		full.BatchSize = batch
		want, err := sim.RunCampaign(context.Background(), full)
		if err != nil {
			t.Fatal(err)
		}

		prefix := full
		prefix.Injections = 12
		part, err := sim.RunCampaign(context.Background(), prefix)
		if err != nil {
			t.Fatal(err)
		}

		resumed := full
		resumed.Resume = &goldeneye.CampaignResume{
			Completed:   part.Injections + part.Aborted,
			Result:      part.CampaignResult,
			Detected:    part.Detected,
			Aborted:     part.Aborted,
			Recovered:   part.Recovered,
			PerDetector: part.PerDetector,
		}
		got, err := sim.RunCampaign(context.Background(), resumed)
		if err != nil {
			t.Fatal(err)
		}
		if got.Detected != want.Detected || got.Recovered != want.Recovered ||
			got.Aborted != want.Aborted {
			t.Fatalf("batch=%d: resumed detection counts diverge: det=%d/%d recov=%d/%d",
				batch, got.Detected, want.Detected, got.Recovered, want.Recovered)
		}
		if got.DeltaLoss != want.DeltaLoss || got.MismatchStat != want.MismatchStat {
			t.Fatalf("batch=%d: resumed moments diverge", batch)
		}
		for name, w := range want.PerDetector {
			g := got.PerDetector[name]
			if g != w {
				t.Fatalf("batch=%d: resumed PerDetector[%s] %+v vs %+v", batch, name, g, w)
			}
		}
	}
}

// Parallel campaigns with detectors armed merge to the same report at any
// worker count; every shard calibrates its own pipeline from the same
// deterministic pool, so the merged false positives are measured once.
func TestDetectParallelWorkersBitIdentical(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := detectConfig(t, sim, x, y, 30, "ranger,sentinel,dmr", "reexecute")
	want, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3} {
		got, err := goldeneye.RunCampaignParallel(context.Background(), cfg, workers, mlpBuilder(t))
		if err != nil {
			t.Fatal(err)
		}
		if got.Detected != want.Detected || got.Recovered != want.Recovered ||
			got.Aborted != want.Aborted {
			t.Fatalf("workers=%d: detection counts diverge: det=%d/%d recov=%d/%d",
				workers, got.Detected, want.Detected, got.Recovered, want.Recovered)
		}
		if got.DeltaLoss != want.DeltaLoss || got.MismatchStat != want.MismatchStat {
			t.Fatalf("workers=%d: moments diverge", workers)
		}
		for name, w := range want.PerDetector {
			g := got.PerDetector[name]
			if g != w {
				t.Fatalf("workers=%d: PerDetector[%s] %+v vs %+v", workers, name, g, w)
			}
		}
	}
}

// The false-positive gate: every calibrated detector must ride a full
// campaign without flagging a single fault-free pool inference. This is
// the test the stress-detect CI target hammers under -race.
func TestCampaignFaultFreeZeroFalsePositives(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(16)
	cfg := detectConfig(t, sim, x, y, 20, "ranger,sentinel,dmr,abft", "none")
	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerDetector) != 4 {
		t.Fatalf("expected 4 detector entries, got %v", rep.PerDetector)
	}
	for name, st := range rep.PerDetector {
		if st.FaultFreeRuns != 16 {
			t.Errorf("%s: false-positive sweep covered %d fault-free runs, want 16", name, st.FaultFreeRuns)
		}
		if st.FalsePositives != 0 {
			t.Errorf("%s: %d false positives on fault-free inferences", name, st.FalsePositives)
		}
	}
}

// PolicyAbort discards flagged inferences: they count as Detected and
// Aborted, never enter the aggregates, and do not trip MaxAborts (which
// bounds panics, not detections).
func TestDetectAbortPolicy(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	cfg := detectConfig(t, sim, x, y, 40, "ranger,sentinel,dmr", "abort")
	cfg.MaxAborts = 1 // must NOT trip on detection aborts
	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injections+rep.Aborted != 40 {
		t.Fatalf("Injections+Aborted = %d+%d, want the planned 40", rep.Injections, rep.Aborted)
	}
	if rep.Aborted == 0 {
		t.Fatal("expected some detections to abort under FP16 exponent faults")
	}
	if rep.Aborted != rep.Detected {
		t.Fatalf("under PolicyAbort every detection aborts: aborted=%d detected=%d",
			rep.Aborted, rep.Detected)
	}
	if rep.Recovered != 0 {
		t.Fatalf("aborts are not recoveries, got Recovered=%d", rep.Recovered)
	}
	if n := int(rep.DeltaLoss.N()); n != rep.Injections {
		t.Fatalf("aggregates must exclude aborted rows: N=%d injections=%d", n, rep.Injections)
	}
}

// Telemetry: per-detector detection counters, the recovery counter, and
// the coverage gauges mirror the report.
func TestDetectTelemetry(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	reg := telemetry.NewRegistry()
	cfg := detectConfig(t, sim, x, y, 40, "ranger,sentinel,dmr", "reexecute")
	cfg.Metrics = reg
	rep, err := sim.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected == 0 {
		t.Fatal("campaign produced no detections to meter")
	}
	for name, st := range rep.PerDetector {
		c := reg.Counter(telemetry.Label(goldeneye.MetricCampaignDetections, "detector", name))
		if got := int(c.Value()); got != st.Detections {
			t.Errorf("%s detections counter = %d, report %d", name, got, st.Detections)
		}
		g := reg.Gauge(telemetry.Label(goldeneye.MetricCampaignCoverage, "detector", name))
		if got, want := g.Value(), rep.DetectorCoverage(name); got != want {
			t.Errorf("%s coverage gauge = %v, report %v", name, got, want)
		}
	}
	if got := int(reg.Counter(goldeneye.MetricCampaignRecoveries).Value()); got != rep.Recovered {
		t.Errorf("recoveries counter = %d, report %d", got, rep.Recovered)
	}
}
