package goldeneye_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"goldeneye"
	"goldeneye/internal/numfmt"
)

func TestParseRoleFormats(t *testing.T) {
	cases := []struct {
		spec    string
		want    string // canonical rendering, "" = expect error
		errPart string
	}{
		{spec: "w:bf16,a:fp8_e4m3,acc:fp32", want: "w:bfloat16,a:fp8_e4m3,acc:fp32"},
		{spec: "weights:fp16,activations:fp16,accumulator:fp32", want: "w:fp16,a:fp16,acc:fp32"},
		{spec: "act:int8", want: "a:int8"},
		{spec: " w:fp16 , a:fp16 ", want: "w:fp16,a:fp16"},
		{spec: "", errPart: "empty role list"},
		{spec: "fp16", errPart: "not role:format"},
		{spec: "x:fp16", errPart: "unknown role"},
		{spec: "w:nosuchformat", errPart: "nosuchformat"},
	}
	for _, c := range cases {
		rf, err := goldeneye.ParseRoleFormats(c.spec)
		if c.want != "" {
			if err != nil {
				t.Errorf("ParseRoleFormats(%q): %v", c.spec, err)
				continue
			}
			if got := rf.Canonical(); got != c.want {
				t.Errorf("ParseRoleFormats(%q) = %q, want %q", c.spec, got, c.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("ParseRoleFormats(%q): error %v, want substring %q", c.spec, err, c.errPart)
		}
	}
}

func TestParseFormatMap(t *testing.T) {
	cases := []struct {
		spec    string
		want    string // canonical, "" = expect error
		errPart string
	}{
		{spec: "w:bf16,a:fp8_e4m3,acc:fp32", want: "w:bfloat16,a:fp8_e4m3,acc:fp32"},
		{spec: "w:fp16;4=w:fp8_e4m3,acc:fp32", want: "w:fp16;4=w:fp8_e4m3,acc:fp32"},
		{spec: "3=a:fp16", want: "3=a:fp16"},
		{spec: "a:fp16;2=a:int8;1=w:fp16", want: "a:fp16;1=w:fp16;2=a:int8"}, // layers sort
		{spec: "", errPart: "empty"},
		{spec: "2=a:fp16;w:fp16", errPart: "must be the first"},
		{spec: "1=a:fp16;1=w:fp16", errPart: "assigns layer 1 twice"},
		{spec: "-1=a:fp16", errPart: "negative"},
		{spec: "x=a:fp16", errPart: "not a number"},
		{spec: "acc:int8", errPart: "metadata"},       // scaled format as accumulator
		{spec: "2=acc:bfp_e5m5", errPart: "metadata"}, // shared-exponent accumulator
	}
	for _, c := range cases {
		asg, err := goldeneye.ParseFormatMap(c.spec)
		if c.want != "" {
			if err != nil {
				t.Errorf("ParseFormatMap(%q): %v", c.spec, err)
				continue
			}
			got := asg.Canonical()
			if got != c.want {
				t.Errorf("ParseFormatMap(%q) = %q, want %q", c.spec, got, c.want)
			}
			// Canonical must round-trip through the parser.
			back, err := goldeneye.ParseFormatMap(got)
			if err != nil {
				t.Errorf("ParseFormatMap(Canonical %q): %v", got, err)
			} else if back.Canonical() != got {
				t.Errorf("canonical round-trip %q -> %q", got, back.Canonical())
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("ParseFormatMap(%q): error %v, want substring %q", c.spec, err, c.errPart)
		}
	}
}

func TestFormatAssignmentValidate(t *testing.T) {
	var cfgErr *goldeneye.ConfigError
	if err := (&goldeneye.FormatAssignment{}).Validate(); err == nil || !errors.As(err, &cfgErr) {
		t.Fatalf("empty assignment: %v, want *ConfigError", err)
	}
	bad := &goldeneye.FormatAssignment{
		PerLayer: map[int]goldeneye.RoleFormats{-2: {Activations: numfmt.FP16(true)}},
	}
	if err := bad.Validate(); err == nil || !errors.As(err, &cfgErr) ||
		!strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative layer: %v, want *ConfigError about negative index", err)
	}
	meta := &goldeneye.FormatAssignment{
		Default: goldeneye.RoleFormats{Accumulator: numfmt.INT8()},
	}
	if err := meta.Validate(); err == nil || !errors.As(err, &cfgErr) ||
		!strings.Contains(err.Error(), "metadata") {
		t.Fatalf("metadata accumulator: %v, want *ConfigError about metadata", err)
	}
	ok := &goldeneye.FormatAssignment{
		Default:  goldeneye.RoleFormats{Weights: numfmt.BFloat16(true)},
		PerLayer: map[int]goldeneye.RoleFormats{3: {Accumulator: numfmt.FP16(true)}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
}

// The deprecation-shim guarantee on the emulation surface: the legacy
// Format+Weights/Neurons booleans and their explicit uniform-assignment
// lowering produce the same accuracy, and neither perturbs the other.
func TestEmulationAssignmentLowering(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(40)
	f := numfmt.FP8E4M3(true)

	legacy := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{Format: f, Neurons: true})
	lowered := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{
		Assignment: &goldeneye.FormatAssignment{Default: goldeneye.RoleFormats{Activations: f}},
	})
	if legacy != lowered {
		t.Fatalf("neuron emulation: legacy %.6f != lowered assignment %.6f", legacy, lowered)
	}

	legacyW := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{Format: f, Weights: true, Neurons: true})
	loweredW := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{
		Assignment: &goldeneye.FormatAssignment{
			Default: goldeneye.RoleFormats{Weights: f, Activations: f},
		},
	})
	if legacyW != loweredW {
		t.Fatalf("full emulation: legacy %.6f != lowered assignment %.6f", legacyW, loweredW)
	}

	// Weight emulation must restore the model: a native evaluation after the
	// assignment run matches one from a fresh simulator state.
	before := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{})
	after := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{})
	if before != after {
		t.Fatalf("assignment weight emulation leaked into native eval: %.6f vs %.6f", before, after)
	}
}

// The deprecation-shim guarantee on the campaign surface: a legacy
// EmulateNetwork campaign and its explicit uniform-assignment lowering are
// bit-identical, trace entry for trace entry.
func TestCampaignAssignmentLowering(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(8)
	f := numfmt.FP8E4M3(true)
	legacyCfg := goldeneye.CampaignConfig{
		Format:         f,
		Site:           goldeneye.SiteValue,
		Target:         goldeneye.TargetNeuron,
		Layer:          sim.InjectableLayers()[1],
		Injections:     20,
		Seed:           13,
		Pool:           &goldeneye.EvalPool{X: x, Y: y},
		EmulateNetwork: true,
		KeepTrace:      true,
	}
	legacy, err := sim.RunCampaign(context.Background(), legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	loweredCfg := legacyCfg
	loweredCfg.EmulateNetwork = false
	loweredCfg.Assignment = &goldeneye.FormatAssignment{
		Default: goldeneye.RoleFormats{Activations: f},
	}
	lowered, err := sim.RunCampaign(context.Background(), loweredCfg)
	if err != nil {
		t.Fatal(err)
	}
	reportsIdentical(t, "campaign lowering", lowered, legacy)
}

// A per-layer override must actually change the computation relative to
// the uniform default it overrides (sanity that the dynamic hook path
// resolves formats per visit rather than globally).
func TestAssignmentPerLayerOverrideTakesEffect(t *testing.T) {
	sim, pool := loadSim(t, "mlp")
	x, y := pool.subset(40)
	harsh := numfmt.NewLUT(2) // 2-bit lookup: destructive enough to move accuracy
	uniform := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{
		Assignment: &goldeneye.FormatAssignment{Default: goldeneye.RoleFormats{Activations: harsh}},
	})
	spared := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{
		Assignment: &goldeneye.FormatAssignment{
			Default: goldeneye.RoleFormats{Activations: harsh},
			PerLayer: map[int]goldeneye.RoleFormats{
				sim.InjectableLayers()[0]: {}, // first linear runs native
			},
		},
	})
	native := sim.Evaluate(x, y, 10, goldeneye.EmulationConfig{})
	if uniform == native {
		t.Skip("2-bit LUT did not move accuracy on this model; override unobservable")
	}
	if spared == uniform {
		t.Fatalf("per-layer native override did not change the result (uniform %.6f, spared %.6f)", uniform, spared)
	}
}
