package goldeneye

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/telemetry"
	"goldeneye/internal/tensor"
	"goldeneye/internal/train"
)

// CampaignConfig specifies a fault-injection campaign (paper §IV-C): a
// number of unique single-bit flips at a chosen layer and site, each applied
// to one inference, with mismatch and ΔLoss recorded against the fault-free
// reference under the same number format.
type CampaignConfig struct {
	// Format is the emulated number system faults are injected into.
	Format numfmt.Format

	// Site selects data-value or metadata injection.
	Site inject.Site

	// Target selects neuron (activation) or weight corruption.
	Target inject.Target

	// FaultKind selects the error model (flip, stuck-at-0/1, burst); the
	// zero value is the paper's default transient single-bit flip.
	FaultKind inject.FaultKind

	// Layer is the layer visit index to inject into.
	Layer int

	// Injections is the number of unique faults (the paper uses 1000 per
	// layer and site).
	Injections int

	// FlipsPerInjection is the number of simultaneous bit flips per
	// injection (0 or 1 = the single-bit model; higher values model
	// multi-bit upsets). Each flip is drawn independently.
	FlipsPerInjection int

	// Seed determines the fault sequence.
	Seed uint64

	// X and Y are the evaluation pool; injection i uses sample i mod N so
	// faults spread evenly over inputs. Inference runs at batch size 1
	// because per-tensor metadata (INT scale, AFP bias) is batch-dependent.
	X *tensor.Tensor
	Y []int

	// UseRanger enables the range detector (on by default in the paper;
	// here explicit).
	UseRanger bool

	// EmulateNetwork quantizes all CONV/LINEAR activations to Format during
	// every inference, so the campaign models a network *running in* the
	// studied format rather than FP32 with one quantized layer.
	EmulateNetwork bool

	// QuantizeWeights converts weights to Format for the campaign.
	QuantizeWeights bool

	// KeepTrace records each injection's outcome (needed by the metric-
	// convergence experiment); costs memory proportional to Injections.
	KeepTrace bool

	// Metrics, when non-nil, receives campaign telemetry: injection
	// progress/mismatch/latency counters and per-layer forward-time
	// histograms (see internal/telemetry/README.md for the metric
	// inventory). It does not alter results; parallel campaigns share one
	// registry across workers via lock-free atomics.
	Metrics *telemetry.Registry

	// MeasureDMR additionally re-executes every injected inference without
	// the transient fault and counts an injection as *detected* when the
	// two outputs differ — dual modular redundancy, one of the software-
	// directed protection techniques the paper positions GoldenEye for
	// (§V-B). Permanent corruption (weight faults) persists across both
	// executions and is structurally undetectable by DMR. Doubles the
	// campaign's inference cost.
	MeasureDMR bool
}

// InjectionOutcome is one recorded injection (with KeepTrace).
type InjectionOutcome struct {
	// Fault is the injection's first flip; Extra holds the remainder for
	// multi-bit injections.
	Fault     inject.Fault
	Extra     []inject.Fault
	Sample    int
	Mismatch  bool
	DeltaLoss float64
}

// CampaignReport is a campaign's aggregated result plus optional trace.
type CampaignReport struct {
	metrics.CampaignResult

	Config CampaignConfig
	Trace  []InjectionOutcome

	// Detected counts injections flagged by DMR re-execution (only
	// populated with MeasureDMR).
	Detected int
}

// DetectionCoverage returns the fraction of injections DMR detected.
func (r *CampaignReport) DetectionCoverage() float64 {
	if r.Injections == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Injections)
}

// campaignRunner holds one worker's prepared campaign state: quantized
// weights, range profile, and fault-free references.
type campaignRunner struct {
	sim       *Simulator
	cfg       CampaignConfig
	backup    *inject.WeightBackup
	ranger    *inject.RangeProfile
	cleanPred []int
	cleanLoss []float64
	elems     int
	flips     int

	// timing is this runner's per-layer forward timer (nil without
	// cfg.Metrics). One per runner because the hook closure carries
	// per-pass state; the histograms it feeds are shared and atomic.
	timing *nn.HookSet
}

// campaignGeometry validates cfg against the simulator and returns the
// fault-drawing geometry (target element count and flips per injection).
func (s *Simulator) campaignGeometry(cfg CampaignConfig) (elems, flips int, err error) {
	if cfg.Format == nil {
		return 0, 0, fmt.Errorf("goldeneye: campaign requires a format")
	}
	if cfg.Injections <= 0 {
		return 0, 0, fmt.Errorf("goldeneye: campaign requires a positive injection count")
	}
	if cfg.X == nil || cfg.X.Dim(0) != len(cfg.Y) {
		return 0, 0, fmt.Errorf("goldeneye: campaign pool mismatch")
	}
	if cfg.Site == inject.SiteMetadata && inject.MetaBitWidth(cfg.Format) == 0 {
		return 0, 0, fmt.Errorf("goldeneye: format %s has no metadata to inject into", cfg.Format.Name())
	}
	elems = s.sizes[cfg.Layer]
	if cfg.Target == inject.TargetNeuron && elems == 0 {
		return 0, 0, fmt.Errorf("goldeneye: unknown layer index %d", cfg.Layer)
	}
	if cfg.Target == inject.TargetWeight {
		p, err := s.widx.ParamOfLayer(cfg.Layer)
		if err != nil {
			return 0, 0, err
		}
		elems = p.Value.Len()
	}
	flips = cfg.FlipsPerInjection
	if flips <= 0 {
		flips = 1
	}
	return elems, flips, nil
}

// newRunner validates cfg against the simulator and computes the
// fault-free references. Callers must invoke close() to restore weights.
func (s *Simulator) newRunner(cfg CampaignConfig) (*campaignRunner, error) {
	elems, flips, err := s.campaignGeometry(cfg)
	if err != nil {
		return nil, err
	}
	r := &campaignRunner{sim: s, cfg: cfg, elems: elems, flips: flips}
	if cfg.Metrics != nil {
		r.timing = layerTimingHooks(cfg.Metrics)
	}
	r.backup = inject.BackupWeights(s.model)
	if cfg.QuantizeWeights {
		inject.QuantizeWeights(s.model, cfg.Format)
	}
	if cfg.UseRanger {
		r.ranger = inject.ProfileRanges(s.model, cfg.X, 16, r.baseHooks())
	}

	// Fault-free reference per pool sample, at batch 1 (per-tensor metadata
	// such as the INT scale depends on batch composition).
	n := cfg.X.Dim(0)
	r.cleanPred = make([]int, n)
	r.cleanLoss = make([]float64, n)
	cleanCtx := nn.NewContext(r.withTiming(r.baseHooks()))
	for i := 0; i < n; i++ {
		logits := nn.Forward(cleanCtx, s.model, cfg.X.Slice(i, i+1))
		r.cleanPred[i] = logits.ArgMaxRows()[0]
		r.cleanLoss[i] = train.CrossEntropyPerSample(logits, cfg.Y[i:i+1])[0]
	}
	return r, nil
}

func (r *campaignRunner) close() { r.backup.Restore() }

func (r *campaignRunner) baseHooks() *nn.HookSet {
	h := nn.NewHookSet()
	if r.cfg.EmulateNetwork {
		format := r.cfg.Format
		h.PostForward(nn.DefaultLayers(), func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
			return format.Emulate(t)
		})
	}
	return h
}

// withTiming merges the runner's per-layer timer into h as the last hook
// set, so emulation/injection/clamp hooks registered earlier fall inside
// each layer's measured window. No-op without telemetry.
func (r *campaignRunner) withTiming(h *nn.HookSet) *nn.HookSet {
	if r.timing != nil {
		h.Merge(r.timing)
	}
	return h
}

// drawFaults produces injection i's fault set from the shared sequence.
func (r *campaignRunner) drawFaults(src *rng.RNG) []inject.Fault {
	faults := make([]inject.Fault, r.flips)
	for j := range faults {
		faults[j] = inject.RandomFault(src, r.cfg.Format, r.cfg.Layer, r.elems, r.cfg.Site, r.cfg.Target)
		faults[j].Kind = r.cfg.FaultKind
	}
	return faults
}

// runOne executes one injected inference and returns its outcome plus
// whether the output was non-finite and whether DMR detected the fault.
func (r *campaignRunner) runOne(faults []inject.Fault, sample int) (out InjectionOutcome, nonFinite, detected bool, err error) {
	cfg := r.cfg
	var restores []func()
	hooks := r.baseHooks()
	if cfg.Target == inject.TargetNeuron {
		hooks.PostForward(nn.ByIndex(cfg.Layer), inject.NeuronHookMulti(cfg.Format, faults))
	} else {
		for _, fault := range faults {
			restore, ferr := inject.WeightFault(cfg.Format, fault, r.sim.widx)
			if ferr != nil {
				for _, undo := range restores {
					undo()
				}
				return out, false, false, ferr
			}
			restores = append(restores, restore)
		}
	}
	if r.ranger != nil {
		hooks.PostForward(nn.AllLayers(), r.ranger.ClampHook())
	}

	logits := nn.Forward(nn.NewContext(r.withTiming(hooks)), r.sim.model, cfg.X.Slice(sample, sample+1))
	if cfg.MeasureDMR {
		// Re-execute without the transient fault; weight corruption is
		// still in place, so it escapes detection (as real DMR would).
		redo := r.baseHooks()
		if r.ranger != nil {
			redo.PostForward(nn.AllLayers(), r.ranger.ClampHook())
		}
		again := nn.Forward(nn.NewContext(r.withTiming(redo)), r.sim.model, cfg.X.Slice(sample, sample+1))
		detected = !again.AllClose(logits, 0)
	}
	// Undo weight corruption in reverse order so overlapping faults
	// restore correctly.
	for j := len(restores) - 1; j >= 0; j-- {
		restores[j]()
	}

	faultyLoss := train.CrossEntropyPerSample(logits, cfg.Y[sample:sample+1])[0]
	out = InjectionOutcome{
		Fault:     faults[0],
		Sample:    sample,
		Mismatch:  logits.ArgMaxRows()[0] != r.cleanPred[sample],
		DeltaLoss: metrics.DeltaLoss(r.cleanLoss[sample], faultyLoss),
	}
	if len(faults) > 1 {
		out.Extra = faults[1:]
	}
	return out, logits.CountNonFinite() > 0, detected, nil
}

// RunCampaign executes the configured campaign and returns its report. The
// model's weights are restored to their pre-campaign values before
// returning.
func (s *Simulator) RunCampaign(cfg CampaignConfig) (*CampaignReport, error) {
	runner, err := s.newRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer runner.close()

	report := &CampaignReport{Config: cfg}
	ct := newCampaignTelemetry(cfg.Metrics, cfg.Injections)
	src := rng.New(cfg.Seed)
	n := cfg.X.Dim(0)
	for i := 0; i < cfg.Injections; i++ {
		start := time.Now()
		out, nonFinite, detected, err := runner.runOne(runner.drawFaults(src), i%n)
		if err != nil {
			return nil, err
		}
		ct.record(out.Mismatch, nonFinite, detected, time.Since(start))
		report.Record(out.Mismatch, out.DeltaLoss, nonFinite)
		if detected {
			report.Detected++
		}
		if cfg.KeepTrace {
			report.Trace = append(report.Trace, out)
		}
	}
	return report, nil
}

// RunCampaignParallel shards a campaign across worker simulators built by
// build (each must wrap an identical, independently allocated model — e.g.
// a fresh zoo load). The fault sequence is drawn up front from cfg.Seed, so
// the injected faults are exactly those of the serial RunCampaign; only
// floating-point aggregation order differs (Welford merge).
func RunCampaignParallel(cfg CampaignConfig, workers int, build func() (*Simulator, error)) (*CampaignReport, error) {
	if workers <= 1 {
		sim, err := build()
		if err != nil {
			return nil, err
		}
		return sim.RunCampaign(cfg)
	}
	if cfg.Injections < workers {
		workers = cfg.Injections
	}

	// Draw the full fault sequence once, in serial order, so the injected
	// faults are bit-identical to the serial campaign's.
	scout, err := build()
	if err != nil {
		return nil, err
	}
	elems, flips, err := scout.campaignGeometry(cfg)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	allFaults := make([][]inject.Fault, cfg.Injections)
	for i := range allFaults {
		faults := make([]inject.Fault, flips)
		for j := range faults {
			faults[j] = inject.RandomFault(src, cfg.Format, cfg.Layer, elems, cfg.Site, cfg.Target)
			faults[j].Kind = cfg.FaultKind
		}
		allFaults[i] = faults
	}

	type shard struct {
		report *CampaignReport
		err    error
	}
	n := cfg.X.Dim(0)
	ct := newCampaignTelemetry(cfg.Metrics, cfg.Injections)
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if cfg.Metrics != nil {
				// Per-worker shard wall time, for spotting stragglers in
				// the metrics dump.
				shardGauge := cfg.Metrics.Gauge(telemetry.Label(MetricCampaignShardTime, "worker", strconv.Itoa(w)))
				defer func(start time.Time) { shardGauge.Set(time.Since(start).Seconds()) }(time.Now())
			}
			sim := scout
			if w > 0 { // reuse the scout for worker 0
				var berr error
				sim, berr = build()
				if berr != nil {
					shards[w].err = berr
					return
				}
			}
			runner, rerr := sim.newRunner(cfg)
			if rerr != nil {
				shards[w].err = rerr
				return
			}
			defer runner.close()
			var shardWork *telemetry.Counter
			if cfg.Metrics != nil {
				shardWork = cfg.Metrics.Counter(telemetry.Label(MetricCampaignShardWork, "worker", strconv.Itoa(w)))
			}
			rep := &CampaignReport{}
			for i := w; i < cfg.Injections; i += workers {
				start := time.Now()
				out, nonFinite, detected, oerr := runner.runOne(allFaults[i], i%n)
				if oerr != nil {
					shards[w].err = oerr
					return
				}
				ct.record(out.Mismatch, nonFinite, detected, time.Since(start))
				if shardWork != nil {
					shardWork.Inc()
				}
				rep.Record(out.Mismatch, out.DeltaLoss, nonFinite)
				if detected {
					rep.Detected++
				}
				if cfg.KeepTrace {
					rep.Trace = append(rep.Trace, out)
				}
			}
			shards[w].report = rep
		}(w)
	}
	wg.Wait()

	merged := &CampaignReport{Config: cfg}
	if cfg.KeepTrace {
		merged.Trace = make([]InjectionOutcome, cfg.Injections)
	}
	for w, sh := range shards {
		if sh.err != nil {
			// Wrap with the shard index so a failed campaign is
			// diagnosable from the progress output (which shard stalled,
			// which worker's build failed).
			return nil, fmt.Errorf("goldeneye: campaign worker %d/%d: %w", w, workers, sh.err)
		}
		merged.CampaignResult.Merge(sh.report.CampaignResult)
		merged.Detected += sh.report.Detected
		if cfg.KeepTrace {
			for k, out := range sh.report.Trace {
				merged.Trace[w+k*workers] = out
			}
		}
	}
	return merged, nil
}
