package goldeneye

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goldeneye/internal/detect"
	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/sampling"
	"goldeneye/internal/telemetry"
	"goldeneye/internal/tensor"
	"goldeneye/internal/train"
)

// CampaignConfig specifies a fault-injection campaign (paper §IV-C): a
// number of unique single-bit flips at a chosen layer and site, each applied
// to one inference, with mismatch and ΔLoss recorded against the fault-free
// reference under the same number format.
type CampaignConfig struct {
	// Format is the emulated number system faults are injected into. With
	// an Assignment it may stay nil; the injection format then resolves
	// from the assigned role at the target layer (activations for neuron
	// targets, weights for weight targets, the accumulator format for
	// SiteAccum).
	Format numfmt.Format

	// Assignment maps layers to per-role formats (weights, activations,
	// accumulator) — the mixed-precision surface that generalizes the
	// uniform Format + EmulateNetwork + QuantizeWeights trio. When set,
	// those three legacy fields are ignored for emulation (Format is still
	// honored as an explicit injection format) and the campaign runs each
	// layer in its assigned roles. Accumulator roles are required for
	// format-space SiteAccum injection; without one, accumulator faults
	// flip bits of the native float32 register.
	Assignment *FormatAssignment

	// Site selects data-value, metadata, or accumulator-interior
	// injection. SiteAccum flips a bit of one partial-sum register inside
	// the target layer's GEMM at a random reduction step; it requires a
	// neuron target and a GEMM-backed layer (CONV or LINEAR).
	Site inject.Site

	// Target selects neuron (activation) or weight corruption.
	Target inject.Target

	// FaultKind selects the error model (flip, stuck-at-0/1, burst); the
	// zero value is the paper's default transient single-bit flip.
	FaultKind inject.FaultKind

	// Layer is the layer visit index to inject into.
	Layer int

	// Injections is the number of unique faults (the paper uses 1000 per
	// layer and site).
	Injections int

	// FlipsPerInjection is the number of simultaneous bit flips per
	// injection (0 or 1 = the single-bit model; higher values model
	// multi-bit upsets). Each flip is drawn independently.
	FlipsPerInjection int

	// Seed determines the fault sequence.
	Seed uint64

	// ShardIndex and ShardCount slice one campaign into deterministic
	// injection-range shards for distributed execution: a shard (s, K)
	// executes exactly the injection indices i with i ≡ s (mod K), in
	// increasing order, drawing the full fault sequence from Seed and
	// discarding the draws it does not own. That stride assignment is the
	// same one RunCampaignParallel gives worker s of K, so K serial shard
	// reports merged by MergeShardReports are byte-identical to a
	// single-node RunCampaignParallel run at workers=K. ShardCount 0 or 1
	// means unsharded; sharded campaigns run serially on each node (the
	// fleet, not the worker pool, provides the parallelism) and are
	// incompatible with Resume.
	ShardIndex int
	ShardCount int

	// Pool is the evaluation pool; injection i uses sample i mod Pool.Len()
	// so faults spread evenly over inputs. Its Batch geometry is the
	// campaign's default injection batch size when BatchSize is unset.
	Pool *EvalPool

	// BatchSize is the number of distinct faults packed into one batched
	// forward pass (the paper's batching lever, §IV-B). Each batch row
	// carries its own fault against its own pool sample, and — because
	// format metadata is computed per row (numfmt.AxisBatch) — the report
	// is bit-identical to the batch-1 path under the same seed. 0 or 1
	// selects the serial path; weight-target campaigns always run serially
	// (weights are shared by every row of a batch). When 0, Pool.Batch is
	// used if set.
	BatchSize int

	// UseRanger enables the range detector (on by default in the paper;
	// here explicit).
	UseRanger bool

	// EmulateNetwork quantizes all CONV/LINEAR activations to Format during
	// every inference, so the campaign models a network *running in* the
	// studied format rather than FP32 with one quantized layer.
	//
	// Deprecated: use Assignment with an Activations role, which
	// generalizes this to per-layer formats. The field remains fully
	// supported and bit-identical; it is ignored when Assignment is set.
	EmulateNetwork bool

	// QuantizeWeights converts weights to Format for the campaign.
	//
	// Deprecated: use Assignment with a Weights role. Note the historical
	// semantics this flag keeps: it converts every non-frozen model
	// parameter (normalization scale/shift included), while an Assignment
	// converts only the parameters of the layers it assigns. Ignored when
	// Assignment is set.
	QuantizeWeights bool

	// KeepTrace records each injection's outcome (needed by the metric-
	// convergence experiment); costs memory proportional to Injections.
	KeepTrace bool

	// Metrics, when non-nil, receives campaign telemetry: injection
	// progress/mismatch/latency counters and per-layer forward-time
	// histograms (see internal/telemetry/README.md for the metric
	// inventory). It does not alter results; parallel campaigns share one
	// registry across workers via lock-free atomics.
	Metrics *telemetry.Registry

	// MeasureDMR additionally re-executes every injected inference without
	// the transient fault and counts an injection as *detected* when the
	// two outputs differ — dual modular redundancy, one of the software-
	// directed protection techniques the paper positions GoldenEye for
	// (§V-B). Permanent corruption (weight faults) persists across both
	// executions and is structurally undetectable by DMR. Doubles the
	// campaign's inference cost.
	MeasureDMR bool

	// MaxAborts bounds degraded-mode operation: a panicking injection
	// (e.g. metadata corruption producing a degenerate scale) is recovered
	// and counted as aborted rather than crashing the campaign, but once
	// more than MaxAborts injections have aborted the campaign fails with
	// the last *InjectionError. Zero or negative means unlimited — the
	// campaign always completes in degraded mode. Injections discarded by
	// RecoverAbort detections count in the report's Aborted field but not
	// toward this threshold (they are expected behaviour, not failures).
	MaxAborts int

	// Detectors declares the campaign's fault-detection pipeline (see
	// internal/detect): calibrated range guards, NaN/Inf sentinels, DMR
	// duplicate-and-compare, ABFT checksums. Detectors calibrate on the
	// fault-free reference pass, measure their false-positive rate on one
	// more fault-free pool sweep, and then monitor every injected
	// inference. Empty means no detection pipeline — campaign reports are
	// bit-identical to pre-detector behaviour.
	Detectors []detect.Spec

	// Recovery pairs the armed detectors with a recovery policy: clamp or
	// zero flagged activations in place, re-execute the inference without
	// the transient fault, or abort (discard) the flagged inference.
	// RecoverNone records detections without intervening. Requires
	// Detectors.
	Recovery detect.Policy

	// Resume continues a previously interrupted campaign from persisted
	// state (see internal/checkpoint). The already-executed prefix of the
	// deterministic fault sequence is drawn and discarded, so a resumed
	// campaign's report is bit-identical to an uninterrupted run's.
	// Incompatible with KeepTrace (traces are not persisted).
	Resume *CampaignResume

	// Sampling turns the campaign into a statistically-driven estimator
	// (see internal/sampling): a deterministic per-stratum selection hash
	// keeps a configurable fraction of the fault space, analytically-masked
	// faults are counted without a forward pass, and the report carries a
	// stratified SDC-rate estimate with a confidence interval — optionally
	// stopping early once the interval is tighter than the plan's TargetCI.
	// An inert plan (fraction 1, nothing else enabled) is normalized to nil,
	// so fraction-1.0 campaigns stay byte-identical — wire bytes included —
	// to exhaustive ones. Sampled campaigns are incompatible with Resume,
	// and sequential stopping is incompatible with sharding (a shard cannot
	// see its siblings' moments; the fleet coordinator rejects TargetCI).
	Sampling *sampling.Plan

	// Progress, when non-nil, receives cumulative campaign progress after
	// every injection group: done counts executed injections (recorded plus
	// aborted, including a resumed prefix), total is Injections — or, for a
	// sampled campaign, the selection's executed count. Parallel
	// campaigns invoke it concurrently from every worker, so the callback
	// must be safe for concurrent use. It observes the campaign without
	// altering its results; the campaign service streams it to SSE clients.
	Progress func(done, total int)
}

// CampaignResume is the state of an interrupted campaign: how many
// injections were executed (recorded + aborted) and the aggregates they
// produced. Serial resumption continues the Welford accumulators in place,
// so the final moments carry no merge reassociation.
type CampaignResume struct {
	// Completed is the number of injections already executed — the length
	// of the fault-sequence prefix to replay without running inference.
	Completed int

	// Result is the interrupted run's aggregate over the prefix.
	Result metrics.CampaignResult

	// Detected and Aborted restore the report fields outside
	// metrics.CampaignResult.
	Detected int
	Aborted  int

	// Recovered and PerDetector restore the detection-pipeline aggregates.
	// Only the Detections/Recovered counts of PerDetector are carried
	// forward; false-positive statistics are re-measured by the resuming
	// run's calibration (deterministic, so the values are identical).
	Recovered   int
	PerDetector map[string]metrics.DetectorStats
}

// InjectionError is one injection that aborted: a panic during the injected
// inference (degenerate metadata scales, non-finite propagation into an
// assertion, a corrupted hook) was recovered and converted into this typed
// error. Campaigns continue in degraded mode past aborted injections,
// counting them in CampaignReport.Aborted, until CampaignConfig.MaxAborts
// is exceeded.
type InjectionError struct {
	// Shard is the worker index that executed the injection (0 for serial
	// campaigns).
	Shard int

	// Injection is the global injection index within the campaign.
	Injection int

	// Fault is the first flip of the offending injection.
	Fault inject.Fault

	// Panic is the recovered panic value.
	Panic interface{}
}

// Error renders the abort with enough context to replay it (the fault plus
// its position in the deterministic sequence).
func (e *InjectionError) Error() string {
	return fmt.Sprintf("goldeneye: injection %d aborted on worker %d (%s): panic: %v",
		e.Injection, e.Shard, e.Fault, e.Panic)
}

// InjectionOutcome is one recorded injection (with KeepTrace).
type InjectionOutcome struct {
	// Fault is the injection's first flip; Extra holds the remainder for
	// multi-bit injections.
	Fault     inject.Fault
	Extra     []inject.Fault
	Sample    int
	Mismatch  bool
	DeltaLoss float64

	// Index is the outcome's global injection index. Populated only for
	// sampled campaigns, whose traces are sparse — it keys the merge of
	// sharded sampled traces back into global order. Exhaustive traces are
	// dense (position == index) and leave it zero, keeping their wire bytes
	// unchanged.
	Index int `json:",omitempty"`

	// NonFinite reports whether the delivered output contained NaN/Inf —
	// or, when a sentinel detector is armed, whether any intermediate
	// activation of the injected pass went non-finite (catching faults
	// that saturate back to finite values before the logits).
	NonFinite bool

	// FirstNonFiniteLayer is the layer visit index whose output first went
	// non-finite during the injected pass, or -1 when none was observed.
	// Populated only when a sentinel detector is armed; the legacy
	// logits-only NonFinite check cannot attribute a layer.
	FirstNonFiniteLayer int

	// Detected reports whether any detector flagged the injection: the
	// detection pipeline (DetectedBy non-empty) or the legacy MeasureDMR
	// re-execution.
	Detected bool

	// DetectedBy lists the pipeline detectors that flagged the injection,
	// in firing order (empty without CampaignConfig.Detectors).
	DetectedBy []string

	// Recovered reports whether the recovery policy restored the
	// fault-free prediction for a detected injection.
	Recovered bool

	// Aborted marks an injection whose inference panicked and was
	// recovered, or was discarded by a RecoverAbort detection; its metric
	// fields are zero.
	Aborted bool
}

// CampaignReport is a campaign's aggregated result plus optional trace.
type CampaignReport struct {
	metrics.CampaignResult

	Config CampaignConfig
	Trace  []InjectionOutcome

	// Detected counts injections flagged by any detector: the detection
	// pipeline (CampaignConfig.Detectors) or the legacy MeasureDMR
	// re-execution.
	Detected int

	// Recovered counts detected injections whose recovery policy restored
	// the fault-free prediction (graceful degradation).
	Recovered int

	// PerDetector breaks detection down by pipeline detector: detections,
	// recoveries, and the false-positive statistics measured on the
	// fault-free pool sweep. Nil without CampaignConfig.Detectors.
	PerDetector map[string]metrics.DetectorStats

	// Aborted counts injections excluded from the metric aggregates:
	// panicked inferences recovered in degraded mode, plus inferences
	// discarded by a RecoverAbort detection.
	Aborted int

	// Sampling carries a sampled campaign's stratified estimator: the
	// per-stratum dispatch accounting (drawn/pruned/skipped/executed) and
	// Welford moments the SDC-rate estimate and its confidence interval
	// derive from. Nil for exhaustive campaigns. The embedded
	// CampaignResult still aggregates exactly the executed injections; the
	// estimator is what extrapolates them to the full fault space.
	Sampling *sampling.Report

	// Interrupted marks a report cut short by context cancellation; the
	// aggregates cover exactly the injections completed before the cut.
	Interrupted bool
}

// DetectionCoverage returns the fraction of injections any detector
// flagged.
func (r *CampaignReport) DetectionCoverage() float64 {
	if r.Injections == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Injections)
}

// DetectorCoverage returns the fraction of executed injections (recorded
// plus aborted — RecoverAbort discards every flagged inference) the named
// pipeline detector flagged.
func (r *CampaignReport) DetectorCoverage(name string) float64 {
	return r.PerDetector[name].Coverage(r.Injections + r.Aborted)
}

// RecoveryRate returns the fraction of detected injections the recovery
// policy restored.
func (r *CampaignReport) RecoveryRate() float64 {
	if r.Detected == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(r.Detected)
}

// recordDetections folds one outcome's per-detector flags into the
// report's breakdown.
func (r *CampaignReport) recordDetections(out InjectionOutcome) {
	if len(out.DetectedBy) == 0 {
		return
	}
	if r.PerDetector == nil {
		r.PerDetector = make(map[string]metrics.DetectorStats)
	}
	for _, name := range out.DetectedBy {
		d := r.PerDetector[name]
		d.Detections++
		if out.Recovered {
			d.Recovered++
		}
		r.PerDetector[name] = d
	}
}

// mergeResumeDetectors folds a resumed campaign's carried-forward
// per-detector counts into dst (this run's baseline: zero detections plus
// re-measured false positives). Only Detections/Recovered are carried —
// false-positive statistics belong to the measuring run.
func mergeResumeDetectors(dst, prev map[string]metrics.DetectorStats) map[string]metrics.DetectorStats {
	if len(prev) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]metrics.DetectorStats, len(prev))
	}
	for name, p := range prev {
		d := dst[name]
		d.Detections += p.Detections
		d.Recovered += p.Recovered
		dst[name] = d
	}
	return dst
}

// evalPool resolves and validates the configured evaluation pool.
func (cfg *CampaignConfig) evalPool() (*EvalPool, error) {
	if cfg.Pool == nil {
		return nil, &ConfigError{Field: "Pool", Reason: "campaign requires an evaluation pool"}
	}
	if err := cfg.Pool.validate(); err != nil {
		return nil, err
	}
	return cfg.Pool, nil
}

// sharded reports whether the campaign is one shard of a distributed run.
func (cfg *CampaignConfig) sharded() bool { return cfg.ShardCount > 1 }

// validateShard checks the shard geometry. Zero values (unsharded) always
// pass; a sharded campaign needs an in-range index, at most one shard per
// injection, and no Resume state (shard reassignment re-runs whole shards —
// the fleet's idempotent dispatch, not mid-shard checkpoints, provides
// crash-safety).
func (cfg *CampaignConfig) validateShard() error {
	if cfg.ShardCount < 0 {
		return configErrf("ShardCount", "negative shard count %d", cfg.ShardCount)
	}
	if cfg.ShardIndex < 0 {
		return configErrf("ShardIndex", "negative shard index %d", cfg.ShardIndex)
	}
	if !cfg.sharded() {
		if cfg.ShardIndex != 0 {
			return configErrf("ShardIndex", "shard index %d requires ShardCount > 1", cfg.ShardIndex)
		}
		return nil
	}
	if cfg.ShardIndex >= cfg.ShardCount {
		return configErrf("ShardIndex", "shard index %d outside shard count %d", cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.ShardCount > cfg.Injections {
		return configErrf("ShardCount", "shard count %d exceeds %d injections (empty shards are not allowed; clamp the shard count)", cfg.ShardCount, cfg.Injections)
	}
	if cfg.Resume != nil {
		return configErrf("Resume", "sharded campaigns do not resume; re-dispatch the shard instead")
	}
	return nil
}

// PlannedInjections is the number of injections this configuration will
// execute: Injections when unsharded, and the size of the shard's stride
// slice {i : i ≡ ShardIndex (mod ShardCount)} when sharded. Progress
// callbacks and job totals use this value.
func (cfg *CampaignConfig) PlannedInjections() int {
	if !cfg.sharded() {
		return cfg.Injections
	}
	n := cfg.Injections / cfg.ShardCount
	if cfg.ShardIndex < cfg.Injections%cfg.ShardCount {
		n++
	}
	return n
}

// packBatch resolves the campaign's injection batch size: BatchSize if set,
// else the pool's Batch geometry, else 1 (serial). Weight-target campaigns
// always pack 1 — a weight fault corrupts state shared by every row of a
// batch, so distinct weight faults cannot share a forward pass.
func (cfg *CampaignConfig) packBatch() int {
	b := cfg.BatchSize
	if b <= 0 && cfg.Pool != nil {
		b = cfg.Pool.Batch
	}
	if b < 1 || cfg.Target == inject.TargetWeight {
		b = 1
	}
	return b
}

// campaignRunner holds one worker's prepared campaign state: quantized
// weights, range profile, and fault-free references.
type campaignRunner struct {
	sim       *Simulator
	cfg       CampaignConfig
	pool      *EvalPool
	batch     int
	backup    *inject.WeightBackup
	ranger    *inject.RangeProfile
	cleanPred []int
	cleanLoss []float64
	geom      campaignGeom

	// emuAsg is the lowered emulation assignment every pass of this runner
	// applies (nil when the campaign emulates nothing); injFormat is the
	// resolved injection format (see campaignGeom.inj).
	emuAsg    *FormatAssignment
	injFormat numfmt.Format

	// pipeline is this runner's detection pipeline (nil without
	// cfg.Detectors). One per runner — detectors carry calibration state,
	// so parallel workers never share instances. fpStats holds the
	// false-positive counts measured on the runner's fault-free pool
	// sweep; every worker measures the identical (deterministic) values,
	// and the merge takes them from one shard only.
	pipeline *detect.Pipeline
	fpStats  map[string]metrics.DetectorStats

	// timing is this runner's per-layer forward timer (nil without
	// cfg.Metrics). One per runner because the hook closure carries
	// per-pass state; the histograms it feeds are shared and atomic.
	timing *nn.HookSet

	// scratch is this runner's reusable per-group storage (see
	// campaignScratch). One per runner — a runner is single-threaded, and
	// parallel workers each own a runner.
	scratch *campaignScratch
}

// campaignArena pools the float32 buffers backing batched campaign inputs,
// so back-to-back campaigns — format sweeps, the bench matrix, the job
// server — reuse storage instead of re-allocating one input tensor per
// injection group.
var campaignArena = tensor.NewArena()

// campaignScratch is a campaignRunner's reusable per-group storage. The
// batched injection loop runs thousands of small groups; without the
// scratch every group allocated its batch-input tensor, its fault sets,
// and five bookkeeping slices, and those allocations dominate the loop
// once the emulation kernels are fused. All fields are sized once for the
// runner's pack batch and resliced per group.
//
// Aliasing rule: fault rows handed out by faultRow alias faultBuf, and the
// outcome Extra field aliases those rows. Any outcome that outlives its
// injection group — i.e. anything appended to a report's Trace — must go
// through traceCopy first.
type campaignScratch struct {
	rowLen    int                    // elements per pool-input row
	xbBuf     []float32              // arena-backed storage behind every xb view
	xb        map[int]*tensor.Tensor // row count → cached view over xbBuf
	yb        []int
	idx       []int
	samples   []int
	faultBuf  []inject.Fault // batch×flips backing store for fault rows
	faultsets [][]inject.Fault
	outs      []InjectionOutcome
	errs      []error
}

// newCampaignScratch sizes a scratch for groups of up to batch rows drawn
// from pool input x, with flips faults per row.
func newCampaignScratch(x *tensor.Tensor, batch, flips int) *campaignScratch {
	rowLen := x.Len() / x.Dim(0)
	return &campaignScratch{
		rowLen:    rowLen,
		xbBuf:     campaignArena.Get(batch * rowLen),
		xb:        make(map[int]*tensor.Tensor, 2),
		yb:        make([]int, batch),
		idx:       make([]int, batch),
		samples:   make([]int, batch),
		faultBuf:  make([]inject.Fault, batch*flips),
		faultsets: make([][]inject.Fault, batch),
		outs:      make([]InjectionOutcome, batch),
		errs:      make([]error, batch),
	}
}

// faultRow returns the k-th reusable fault row (flips faults long). The
// row is overwritten when a later group reuses slot k.
func (sc *campaignScratch) faultRow(k, flips int) []inject.Fault {
	return sc.faultBuf[k*flips : (k+1)*flips]
}

// gather fills and returns the cached batch-input view for samples: the
// selected rows of x copied into arena-backed storage, wrapped once per
// distinct row count (a campaign sees at most two — the full batch and the
// final partial group). The view is valid until the next gather call.
func (sc *campaignScratch) gather(x *tensor.Tensor, samples []int) *tensor.Tensor {
	rows := len(samples)
	xb := sc.xb[rows]
	if xb == nil {
		shape := append([]int{rows}, x.Shape()[1:]...)
		xb = tensor.Wrap(sc.xbBuf[:rows*sc.rowLen], shape...)
		sc.xb[rows] = xb
	}
	tensor.GatherRowsInto(xb, x, samples)
	return xb
}

// release returns the arena-backed storage to the pool. The scratch, and
// every tensor view it handed out, must not be used afterwards.
func (sc *campaignScratch) release() {
	if sc == nil || sc.xbBuf == nil {
		return
	}
	campaignArena.Put(sc.xbBuf)
	sc.xbBuf = nil
	sc.xb = nil
}

// traceCopy returns out with its Extra fault slice deep-copied. Outcomes
// headed for a report's Trace outlive the injection group that produced
// them, while Extra aliases the runner's reused fault scratch (and, on the
// parallel path, the shared pre-drawn sequence the next resume may reuse).
func traceCopy(out InjectionOutcome) InjectionOutcome {
	if len(out.Extra) > 0 {
		out.Extra = append([]inject.Fault(nil), out.Extra...)
	}
	return out
}

// emulationAssignment lowers cfg to the format assignment its forward
// passes run under: Assignment itself when set, else the uniform-activation
// assignment the deprecated EmulateNetwork flag describes. The deprecated
// QuantizeWeights flag is deliberately not lowered — its historical
// all-parameter conversion is applied verbatim by newRunner, so legacy
// campaigns stay bit-identical.
func (cfg *CampaignConfig) emulationAssignment() *FormatAssignment {
	if cfg.Assignment != nil {
		return cfg.Assignment
	}
	if cfg.EmulateNetwork && cfg.Format != nil {
		return &FormatAssignment{Default: RoleFormats{Activations: cfg.Format}}
	}
	return nil
}

// campaignGeom is the validated fault-drawing geometry campaignGeometry
// resolves: the evaluation pool, the target element count, the flips per
// injection, and the injection format/depth.
type campaignGeom struct {
	pool  *EvalPool
	elems int
	flips int

	// inj is the format faults encode in: cfg.Format for value/metadata
	// sites (or the assigned role standing in for a nil Format), and the
	// target layer's accumulator format for SiteAccum — nil there meaning
	// the native float32 register.
	inj numfmt.Format

	// depth is the target layer's GEMM reduction depth — the number of
	// multiply-accumulate steps a SiteAccum fault can land on. Zero for
	// other sites.
	depth int
}

// campaignGeometry validates cfg against the simulator and returns the
// resolved evaluation pool plus the fault-drawing geometry.
func (s *Simulator) campaignGeometry(cfg CampaignConfig) (campaignGeom, error) {
	var g campaignGeom
	fail := func(err error) (campaignGeom, error) { return campaignGeom{}, err }
	if cfg.Format == nil && cfg.Assignment == nil {
		return fail(&ConfigError{Field: "Format", Reason: "campaign requires a format"})
	}
	if cfg.Assignment != nil {
		if err := cfg.Assignment.Validate(); err != nil {
			return fail(err)
		}
	}
	if cfg.Injections <= 0 {
		return fail(configErrf("Injections", "campaign requires a positive injection count, got %d", cfg.Injections))
	}
	if err := cfg.validateShard(); err != nil {
		return fail(err)
	}
	if err := cfg.Sampling.Validate(); err != nil {
		return fail(&ConfigError{Field: "Sampling", Reason: err.Error()})
	}
	if cfg.Sampling.Active() {
		if cfg.Resume != nil {
			return fail(configErrf("Sampling",
				"sampled campaigns do not resume (the estimator state is not checkpointed); re-run the campaign"))
		}
		if cfg.Sampling.TargetCI > 0 && cfg.sharded() {
			return fail(configErrf("Sampling",
				"sequential stopping needs the whole campaign's moments; a shard cannot stop on its own (drop TargetCI or the shard geometry)"))
		}
		if cfg.Sampling.Prune {
			switch {
			case cfg.Site != inject.SiteValue:
				return fail(configErrf("Sampling",
					"analytic pruning bounds per-bit value perturbations; it requires a value site, got %s", cfg.Site))
			case cfg.Target != inject.TargetNeuron:
				return fail(configErrf("Sampling",
					"analytic pruning compares perturbations against the layer's calibrated activation range; it requires a neuron target"))
			case cfg.FaultKind == inject.KindBurst:
				return fail(configErrf("Sampling",
					"burst faults span tensor elements and have no per-bit perturbation bound to prune with"))
			case !cfg.UseRanger:
				return fail(configErrf("Sampling",
					"analytic pruning needs the ranger's calibrated activation bounds; set UseRanger"))
			}
		}
	}
	pool, err := cfg.evalPool()
	if err != nil {
		return fail(err)
	}
	g.pool = pool
	// Validate the effective pack batch, not the raw field: weight-target
	// campaigns degrade any BatchSize to the serial path (see packBatch),
	// so an oversized request is only an error when it would actually run.
	if b := cfg.packBatch(); b > pool.Len() {
		return fail(configErrf("BatchSize",
			"campaign batch %d exceeds the pool's %d samples", b, pool.Len()))
	}
	if cfg.Recovery != detect.PolicyNone && len(cfg.Detectors) == 0 {
		return fail(fmt.Errorf("goldeneye: recovery policy %s requires Detectors", cfg.Recovery))
	}
	if cfg.Resume != nil {
		if cfg.KeepTrace {
			return fail(fmt.Errorf("goldeneye: resume does not support KeepTrace campaigns"))
		}
		if cfg.Resume.Completed < 0 || cfg.Resume.Completed > cfg.Injections {
			return fail(fmt.Errorf("goldeneye: resume point %d outside campaign of %d injections",
				cfg.Resume.Completed, cfg.Injections))
		}
	}
	g.elems = s.sizes[cfg.Layer]
	if cfg.Target == inject.TargetNeuron && g.elems == 0 {
		return fail(fmt.Errorf("goldeneye: unknown layer index %d", cfg.Layer))
	}
	if cfg.Target == inject.TargetWeight {
		p, err := s.widx.ParamOfLayer(cfg.Layer)
		if err != nil {
			return fail(err)
		}
		g.elems = p.Value.Len()
	}
	g.flips = cfg.FlipsPerInjection
	if g.flips <= 0 {
		g.flips = 1
	}
	if cfg.Site == inject.SiteAccum {
		if cfg.Target != inject.TargetNeuron {
			return fail(&ConfigError{Field: "Target",
				Reason: "accumulator faults corrupt partial sums of the layer output; they require a neuron target"})
		}
		if cfg.FaultKind == inject.KindBurst {
			return fail(&ConfigError{Field: "FaultKind",
				Reason: "burst faults span the elements of one value tensor and have no accumulator-register analogue"})
		}
		info, ok := s.layerInfo(cfg.Layer)
		if !ok {
			return fail(fmt.Errorf("goldeneye: unknown layer index %d", cfg.Layer))
		}
		mod := s.modules[cfg.Layer]
		depth, hasGEMM := nn.GEMMDepth(mod)
		if !hasGEMM {
			return fail(configErrf("Layer",
				"accumulator-site injection requires a GEMM-backed layer, but layer %d is %s (%s)",
				cfg.Layer, info.Kind, info.Name))
		}
		g.depth = depth
		g.inj = cfg.Assignment.rolesFor(info, nn.DefaultLayers()).Accumulator
		return g, nil
	}
	// Value/metadata sites: resolve the injection format — the explicit
	// Format, or the assigned role matching the target at the target layer.
	g.inj = cfg.Format
	if g.inj == nil {
		info, _ := s.layerInfo(cfg.Layer)
		roles := cfg.Assignment.rolesFor(info, nn.DefaultLayers())
		if cfg.Target == inject.TargetWeight {
			g.inj = roles.Weights
		} else {
			g.inj = roles.Activations
		}
		if g.inj == nil {
			return fail(configErrf("Format",
				"campaign requires an injection format: set Format, or assign layer %d a %s role",
				cfg.Layer, map[inject.Target]string{inject.TargetWeight: "weights", inject.TargetNeuron: "activations"}[cfg.Target]))
		}
	}
	if cfg.Site == inject.SiteMetadata && inject.MetaBitWidth(g.inj) == 0 {
		return fail(fmt.Errorf("goldeneye: format %s has no metadata to inject into", g.inj.Name()))
	}
	if cfg.Sampling.Active() && cfg.Sampling.Prune && !sampling.Prunable(g.inj) {
		return fail(configErrf("Sampling",
			"analytic pruning requires a metadata-free injection format of at most %d bits, got %s",
			sampling.MaxPruneBits, g.inj.Name()))
	}
	return g, nil
}

// newRunner validates cfg against the simulator and computes the
// fault-free references, checking ctx between forward passes so a SIGINT
// during setup (range profiling, clean references) aborts promptly.
// Callers must invoke close() to restore weights.
func (s *Simulator) newRunner(ctx context.Context, cfg CampaignConfig) (*campaignRunner, error) {
	g, err := s.campaignGeometry(cfg)
	if err != nil {
		return nil, err
	}
	pool := g.pool
	r := &campaignRunner{
		sim: s, cfg: cfg, pool: pool, batch: cfg.packBatch(),
		geom: g, emuAsg: cfg.emulationAssignment(), injFormat: g.inj,
	}
	if cfg.Metrics != nil {
		r.timing = layerTimingHooks(cfg.Metrics)
	}
	r.backup = inject.BackupWeights(s.model)
	// Any early exit below must restore the weights it may have quantized.
	fail := func(err error) (*campaignRunner, error) {
		r.backup.Restore()
		return nil, err
	}
	// Offline weight conversion. The deprecated QuantizeWeights flag keeps
	// its historical all-parameter semantics bit for bit; an Assignment
	// converts each assigned layer's own parameters instead.
	if cfg.Assignment != nil {
		s.applyWeightAssignment(cfg.Assignment, nn.DefaultLayers())
	} else if cfg.QuantizeWeights {
		inject.QuantizeWeights(s.model, cfg.Format)
	}
	// The detection pipeline builds after weight quantization, so
	// structural checksums (ABFT) describe the weights the campaign
	// actually runs with.
	if len(cfg.Detectors) > 0 {
		pipe, perr := detect.Build(cfg.Detectors, cfg.Recovery, s.detectTarget())
		if perr != nil {
			return fail(perr)
		}
		r.pipeline = pipe
	}
	var calSpan telemetry.Span
	if cfg.Metrics != nil && r.pipeline != nil {
		calSpan = telemetry.StartSpan(cfg.Metrics.Histogram(MetricCampaignCalibration, telemetry.DurationBuckets))
	}
	if cfg.UseRanger {
		r.ranger = inject.ProfileRanges(ctx, s.model, pool.X, 16, r.baseHooks())
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
	}

	// Fault-free reference per pool sample. Serial campaigns compute them
	// at batch 1; batched campaigns batch the sweep under per-row emulation
	// (numfmt.AxisBatch), which is bit-identical per sample to the batch-1
	// references. The detectors' calibration hooks ride the same pass:
	// the ranger learns its bounds and ABFT its residual envelope from the
	// very activations the clean references are computed on, at zero extra
	// inference cost.
	refHooks := r.baseHooks()
	if r.batch > 1 {
		refHooks = r.batchHooks()
	}
	if r.pipeline != nil {
		refHooks.Merge(r.pipeline.CalibrationHooks())
	}
	n := pool.Len()
	r.cleanPred = make([]int, n)
	r.cleanLoss = make([]float64, n)
	cleanCtx := nn.NewContext(r.withTiming(refHooks))
	for lo := 0; lo < n; lo += r.batch {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		hi := lo + r.batch
		if hi > n {
			hi = n
		}
		logits := nn.Forward(cleanCtx, s.model, pool.X.Slice(lo, hi))
		copy(r.cleanPred[lo:hi], logits.ArgMaxRows())
		copy(r.cleanLoss[lo:hi], train.CrossEntropyPerSample(logits, pool.Y[lo:hi]))
	}
	if r.pipeline != nil {
		if err := r.pipeline.FinishCalibration(); err != nil {
			return fail(err)
		}
		// One more fault-free sweep with the pipeline armed: anything it
		// flags is a false positive (calibrated detectors are constructed
		// not to flag their own calibration pool; this measures it).
		if err := r.measureFalsePositives(ctx); err != nil {
			return fail(err)
		}
		calSpan.End()
	}
	// Allocated last so the fail() paths above never strand a pooled
	// buffer; close() returns it to the arena.
	r.scratch = newCampaignScratch(pool.X, r.batch, g.flips)
	return r, nil
}

// measureFalsePositives runs the armed pipeline over the fault-free pool
// and records per-detector false-positive counts. The sweep is
// deterministic, so every parallel worker measures identical values.
func (r *campaignRunner) measureFalsePositives(ctx context.Context) error {
	n := r.pool.Len()
	stats := make(map[string]metrics.DetectorStats, len(r.cfg.Detectors))
	for _, name := range r.pipeline.Names() {
		stats[name] = metrics.DetectorStats{FaultFreeRuns: n}
	}
	needRerun := r.pipeline.NeedsRerun()
	for lo := 0; lo < n; lo += r.batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + r.batch
		if hi > n {
			hi = n
		}
		rec := detect.NewRecorder(hi - lo)
		hooks := r.armedCleanHooks(rec)
		x := r.pool.X.Slice(lo, hi)
		logits := nn.Forward(nn.NewContext(r.withTiming(hooks)), r.sim.model, x)
		if needRerun {
			redo := r.armedCleanHooks(detect.NewRecorder(hi - lo))
			again := nn.Forward(nn.NewContext(r.withTiming(redo)), r.sim.model, x)
			r.pipeline.CompareOutputs(rec, logits, again)
		}
		// The recorder dedupes per (detector, row), so each event is one
		// flagged fault-free inference.
		for _, e := range rec.Events() {
			d := stats[e.Detector]
			d.FalsePositives++
			stats[e.Detector] = d
		}
	}
	r.fpStats = stats
	return nil
}

// armedCleanHooks assembles a fault-free pass's hooks with the pipeline
// armed: emulation (per-row when batched), the legacy ranger clamp if
// enabled, then the detectors — the same composition an injected pass uses,
// minus the injection.
func (r *campaignRunner) armedCleanHooks(rec *detect.Recorder) *nn.HookSet {
	var hooks *nn.HookSet
	if r.batch > 1 {
		hooks = r.batchHooks()
	} else {
		hooks = r.baseHooks()
	}
	if r.ranger != nil {
		hooks.PostForward(nn.AllLayers(), r.ranger.ClampHook())
	}
	if r.pipeline != nil {
		hooks.Merge(r.pipeline.Arm(rec))
	}
	return hooks
}

// detectorBaseline returns a report's starting per-detector stats: zero
// detections plus the runner's measured false-positive counts (nil without
// a pipeline).
func (r *campaignRunner) detectorBaseline() map[string]metrics.DetectorStats {
	if r.pipeline == nil {
		return nil
	}
	m := make(map[string]metrics.DetectorStats, len(r.fpStats))
	for k, v := range r.fpStats {
		m[k] = v
	}
	return m
}

func (r *campaignRunner) close() {
	r.backup.Restore()
	r.scratch.release()
}

// baseHooks assembles the serial-pass emulation hooks from the campaign's
// lowered assignment: activation hooks carrying each format's fused-kernel
// epilogue (tensor-wide metadata axis), plus accumulator-format rounding on
// GEMM-backed layers. A legacy EmulateNetwork campaign lowers to a uniform
// activation assignment and registers the exact hook it always has; the
// whole-tensor Emulate closure remains the fused epilogue's fallback and
// the two are pinned bit-identical.
func (r *campaignRunner) baseHooks() *nn.HookSet {
	return r.emulationHooks(numfmt.AxisTensor)
}

// batchHooks is baseHooks for batched passes: activation emulation runs
// per batch row (numfmt.AxisBatch), so each row's metadata — INT scale,
// AFP bias, BFP shared exponents — is computed from that row alone and the
// row stays bit-identical to its batch-1 inference. Accumulator-format
// rounding is per element and needs no axis distinction.
func (r *campaignRunner) batchHooks() *nn.HookSet {
	return r.emulationHooks(numfmt.AxisBatch)
}

func (r *campaignRunner) emulationHooks(axis numfmt.MetaAxis) *nn.HookSet {
	h := nn.NewHookSet()
	addActivationHooks(h, r.emuAsg, axis, nn.DefaultLayers())
	addAccumHooks(h, r.emuAsg, nn.DefaultLayers())
	return h
}

// withTiming merges the runner's per-layer timer into h as the last hook
// set, so emulation/injection/clamp hooks registered earlier fall inside
// each layer's measured window. No-op without telemetry.
func (r *campaignRunner) withTiming(h *nn.HookSet) *nn.HookSet {
	if r.timing != nil {
		h.Merge(r.timing)
	}
	return h
}

// faultDrawer draws a campaign's deterministic fault sequence from its
// seed. It is the single drawing implementation shared by the serial and
// parallel paths (and by resume-prefix replay), so the sequences cannot
// drift apart.
type faultDrawer struct {
	src  *rng.RNG
	cfg  *CampaignConfig
	geom campaignGeom
}

// newFaultDrawer positions a drawer at the start of cfg's fault sequence
// over the resolved geometry.
func newFaultDrawer(cfg *CampaignConfig, g campaignGeom) *faultDrawer {
	return &faultDrawer{src: rng.New(cfg.Seed), cfg: cfg, geom: g}
}

// next produces the next injection's fault set in fresh storage.
func (d *faultDrawer) next() []inject.Fault {
	faults := make([]inject.Fault, d.geom.flips)
	d.nextInto(faults)
	return faults
}

// nextInto draws the next injection's fault set into dst (len geom.flips),
// consuming exactly the RNG stream next would — the allocation-free form
// the batched loop uses with its scratch rows.
func (d *faultDrawer) nextInto(dst []inject.Fault) {
	for j := range dst {
		if d.cfg.Site == inject.SiteAccum {
			dst[j] = inject.RandomAccumFault(d.src, d.geom.inj, d.cfg.Layer, d.geom.elems, d.geom.depth)
		} else {
			dst[j] = inject.RandomFault(d.src, d.geom.inj, d.cfg.Layer, d.geom.elems, d.cfg.Site, d.cfg.Target)
		}
		dst[j].Kind = d.cfg.FaultKind
	}
}

// abortedOutcome is the trace placeholder for an injection whose inference
// panicked: the faults and sample are known, the metrics are not.
func abortedOutcome(faults []inject.Fault, sample int) InjectionOutcome {
	out := InjectionOutcome{Fault: faults[0], Sample: sample, Aborted: true, FirstNonFiniteLayer: -1}
	if len(faults) > 1 {
		out.Extra = faults[1:]
	}
	return out
}

// runOne executes one injected inference and returns its outcome. Weight
// corruption is undone via defer so that a panic inside the forward pass
// (recovered by runIsolated) cannot leak corrupted weights into the next
// injection.
func (r *campaignRunner) runOne(faults []inject.Fault, sample int) (out InjectionOutcome, err error) {
	cfg := r.cfg
	out.FirstNonFiniteLayer = -1
	hooks := r.baseHooks()
	switch {
	case cfg.Site == inject.SiteAccum:
		// Registered after the emulation accum entries, so the layer's
		// assigned accumulator rounding stays first in the merged spec and
		// the faults corrupt the quantized reduction.
		spec := nn.AccumSpec{Faults: inject.AccumFaultsFor(r.injFormat, faults, 0)}
		hooks.Accum(nn.ByIndex(cfg.Layer), func(nn.LayerInfo) nn.AccumSpec { return spec })
	case cfg.Target == inject.TargetNeuron:
		hooks.PostForward(nn.ByIndex(cfg.Layer), inject.NeuronHookMulti(r.injFormat, faults))
	default:
		var restores []func()
		// Undo weight corruption in reverse order so overlapping faults
		// restore correctly — deferred, so panic unwinding restores too.
		defer func() {
			for j := len(restores) - 1; j >= 0; j-- {
				restores[j]()
			}
		}()
		for _, fault := range faults {
			restore, ferr := inject.WeightFault(r.injFormat, fault, r.sim.widx)
			if ferr != nil {
				return out, ferr
			}
			restores = append(restores, restore)
		}
	}
	if r.ranger != nil {
		hooks.PostForward(nn.AllLayers(), r.ranger.ClampHook())
	}
	var rec *detect.Recorder
	if r.pipeline != nil {
		// Armed after the injection hook, so faults are detected rather
		// than prevented (same registration rule as the ranger clamp).
		rec = detect.NewRecorder(1)
		hooks.Merge(r.pipeline.Arm(rec))
	}

	x := r.pool.X.Slice(sample, sample+1)
	logits := nn.Forward(nn.NewContext(r.withTiming(hooks)), r.sim.model, x)

	// Re-execution without the transient fault, shared by legacy
	// MeasureDMR, the pipeline's DMR comparator, and RecoverReexecute.
	// Weight corruption is still in place, so it escapes DMR detection and
	// survives re-execution (as the real techniques would).
	var again *tensor.Tensor
	runRedo := func() *tensor.Tensor {
		redo := r.baseHooks()
		if r.ranger != nil {
			redo.PostForward(nn.AllLayers(), r.ranger.ClampHook())
		}
		if r.pipeline != nil {
			// Mirror the faulty pass's protection context; detections on
			// the clean duplicate are discarded.
			redo.Merge(r.pipeline.Arm(detect.NewRecorder(1)))
		}
		return nn.Forward(nn.NewContext(r.withTiming(redo)), r.sim.model, x)
	}
	if cfg.MeasureDMR || (r.pipeline != nil && r.pipeline.NeedsRerun()) {
		again = runRedo()
		if cfg.MeasureDMR {
			out.Detected = !again.AllClose(logits, 0)
		}
		if r.pipeline != nil {
			r.pipeline.CompareOutputs(rec, logits, again)
		}
	}

	out.Fault = faults[0]
	out.Sample = sample
	if len(faults) > 1 {
		out.Extra = faults[1:]
	}
	detected := false
	if rec != nil {
		out.DetectedBy = rec.DetectedBy(0)
		out.FirstNonFiniteLayer = rec.FirstNonFiniteLayer(0)
		detected = len(out.DetectedBy) > 0
		if detected {
			out.Detected = true
		}
	}
	final := logits
	if detected {
		switch r.pipeline.Policy() {
		case detect.PolicyAbort:
			out.Aborted = true
			return out, nil
		case detect.PolicyReexecute:
			if again == nil {
				again = runRedo()
			}
			final = again
		}
	}

	faultyLoss := train.CrossEntropyPerSample(final, r.pool.Y[sample:sample+1])[0]
	out.Mismatch = final.ArgMaxRows()[0] != r.cleanPred[sample]
	out.DeltaLoss = metrics.DeltaLoss(r.cleanLoss[sample], faultyLoss)
	out.NonFinite = final.CountNonFinite() > 0 || out.FirstNonFiniteLayer >= 0
	if detected && r.pipeline.Policy() != detect.PolicyNone {
		out.Recovered = !out.Mismatch
	}
	return out, nil
}

// runIsolated executes one injection with panic isolation: a panic inside
// the injected inference is recovered and converted into an
// *InjectionError carrying the shard index and the offending fault, so one
// corrupted injection degrades the campaign instead of killing the process.
func (r *campaignRunner) runIsolated(shard, injection int, faults []inject.Fault, sample int) (out InjectionOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			out = abortedOutcome(faults, sample)
			err = &InjectionError{Shard: shard, Injection: injection, Fault: faults[0], Panic: p}
		}
	}()
	return r.runOne(faults, sample)
}

// runBatch executes a group of injections — injection idx[k] applies
// faultsets[k] to pool sample samples[k] — in one batched forward pass,
// returning per-injection outcomes and errors positionally. Each batch row
// carries its own fault under per-row format metadata, so every outcome is
// bit-identical to the serial batch-1 path. If anything inside the batched
// pass panics, the whole group falls back to per-injection serial
// execution, which reproduces the non-aborting rows bit-identically and
// confines the abort to the offending injection(s).
func (r *campaignRunner) runBatch(shard int, idx []int, faultsets [][]inject.Fault, samples []int) ([]InjectionOutcome, []error) {
	// Scratch-backed: valid until the runner's next runBatch call, which is
	// after the caller has folded them into its report.
	outs := r.scratch.outs[:len(idx)]
	errs := r.scratch.errs[:len(idx)]
	for k := range outs {
		outs[k] = InjectionOutcome{}
		errs[k] = nil
	}
	serially := func() {
		for k := range idx {
			outs[k], errs[k] = r.runIsolated(shard, idx[k], faultsets[k], samples[k])
		}
	}
	if len(idx) == 1 || r.cfg.Target != inject.TargetNeuron {
		serially()
		return outs, errs
	}
	if !r.tryRunBatch(faultsets, samples, outs) {
		serially()
	}
	return outs, errs
}

// tryRunBatch attempts the batched pass proper; false means a panic was
// recovered and the caller must re-run the group serially.
func (r *campaignRunner) tryRunBatch(faultsets [][]inject.Fault, samples []int, outs []InjectionOutcome) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			ok = false
		}
	}()
	cfg := r.cfg
	rows := len(samples)
	xb := r.scratch.gather(r.pool.X, samples)
	yb := r.scratch.yb[:rows]
	for k, s := range samples {
		yb[k] = r.pool.Y[s]
	}
	// Same hook registration order as the serial path: emulation, then
	// injection at the target layer, then the range detector's clamp, then
	// the detection pipeline. Detection and recovery are row-confined, so
	// every row stays bit-identical to its serial batch-1 inference.
	hooks := r.batchHooks()
	if cfg.Site == inject.SiteAccum {
		// One accumulator spec covers the whole pass: row k's faults land
		// on batch row k of the target layer's GEMM, so each injection
		// corrupts only its own sample's reduction.
		var afs []nn.AccumFault
		for k, fs := range faultsets {
			afs = append(afs, inject.AccumFaultsFor(r.injFormat, fs, k)...)
		}
		spec := nn.AccumSpec{Faults: afs}
		hooks.Accum(nn.ByIndex(cfg.Layer), func(nn.LayerInfo) nn.AccumSpec { return spec })
	} else {
		hooks.PostForward(nn.ByIndex(cfg.Layer), inject.NeuronHookBatched(r.injFormat, faultsets))
	}
	if r.ranger != nil {
		hooks.PostForward(nn.AllLayers(), r.ranger.ClampHook())
	}
	var rec *detect.Recorder
	if r.pipeline != nil {
		rec = detect.NewRecorder(rows)
		hooks.Merge(r.pipeline.Arm(rec))
	}
	logits := nn.Forward(nn.NewContext(r.withTiming(hooks)), r.sim.model, xb)
	var again *tensor.Tensor
	runRedo := func() *tensor.Tensor {
		redo := r.batchHooks()
		if r.ranger != nil {
			redo.PostForward(nn.AllLayers(), r.ranger.ClampHook())
		}
		if r.pipeline != nil {
			redo.Merge(r.pipeline.Arm(detect.NewRecorder(rows)))
		}
		return nn.Forward(nn.NewContext(r.withTiming(redo)), r.sim.model, xb)
	}
	if cfg.MeasureDMR || (r.pipeline != nil && r.pipeline.NeedsRerun()) {
		again = runRedo()
		if r.pipeline != nil {
			r.pipeline.CompareOutputs(rec, logits, again)
		}
	}
	// RecoverReexecute delivers the clean duplicate's rows for flagged
	// injections; reuse the DMR rerun when one already exists.
	if rec != nil && r.pipeline.Policy() == detect.PolicyReexecute && again == nil && rec.AnyFlagged() {
		again = runRedo()
	}
	preds := logits.ArgMaxRows()
	losses := train.CrossEntropyPerSample(logits, yb)
	nonFinite := logits.NonFiniteRows()
	var redoPreds []int
	var redoLosses []float64
	var redoNonFinite []int
	if again != nil {
		redoPreds = again.ArgMaxRows()
		redoLosses = train.CrossEntropyPerSample(again, yb)
		redoNonFinite = again.NonFiniteRows()
	}
	for k := range outs {
		out := InjectionOutcome{
			Fault:               faultsets[k][0],
			Sample:              samples[k],
			FirstNonFiniteLayer: -1,
		}
		if len(faultsets[k]) > 1 {
			out.Extra = faultsets[k][1:]
		}
		if cfg.MeasureDMR && again != nil {
			out.Detected = !again.Slice(k, k+1).AllClose(logits.Slice(k, k+1), 0)
		}
		detected := false
		if rec != nil {
			out.DetectedBy = rec.DetectedBy(k)
			out.FirstNonFiniteLayer = rec.FirstNonFiniteLayer(k)
			detected = len(out.DetectedBy) > 0
			if detected {
				out.Detected = true
			}
		}
		pred, loss, nf := preds[k], losses[k], nonFinite[k] > 0
		if detected {
			switch r.pipeline.Policy() {
			case detect.PolicyAbort:
				out.Aborted = true
				outs[k] = out
				continue
			case detect.PolicyReexecute:
				pred, loss, nf = redoPreds[k], redoLosses[k], redoNonFinite[k] > 0
			}
		}
		out.Mismatch = pred != r.cleanPred[samples[k]]
		out.DeltaLoss = metrics.DeltaLoss(r.cleanLoss[samples[k]], loss)
		out.NonFinite = nf || out.FirstNonFiniteLayer >= 0
		if detected && r.pipeline.Policy() != detect.PolicyNone {
			out.Recovered = !out.Mismatch
		}
		outs[k] = out
	}
	return true
}

// RunCampaign executes the configured campaign and returns its report. The
// model's weights are restored to their pre-campaign values before
// returning.
//
// Lifecycle semantics:
//   - Batching: with cfg.BatchSize > 1 (or a Pool.Batch geometry), up to
//     BatchSize distinct neuron faults share one batched forward pass,
//     each against its own pool sample under per-row format metadata. The
//     report — aggregates, Detected/Aborted counts, and trace — is
//     bit-identical to the serial batch-1 path under the same seed.
//   - Cancellation: ctx is checked cooperatively before every injection
//     group (every injection when serial); on cancellation the partial
//     report (aggregating exactly the completed prefix, Interrupted set)
//     is returned together with ctx.Err().
//   - Panic isolation: an injection whose inference panics is recovered,
//     counted in the report's Aborted field, and the campaign continues in
//     degraded mode until more than cfg.MaxAborts injections abort. A
//     panic inside a batched pass re-runs that group serially, so the
//     abort lands on the offending injection only.
//   - Resume: with cfg.Resume, the already-executed fault prefix is drawn
//     but not re-run and the Welford accumulators continue from the
//     persisted state, so the final report is bit-identical to an
//     uninterrupted run's.
func (s *Simulator) RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// An inert sampling plan is indistinguishable from no plan; normalize
	// it away so the report — wire bytes included — stays byte-identical to
	// an exhaustive campaign's.
	if !cfg.Sampling.Active() {
		cfg.Sampling = nil
	}
	runner, err := s.newRunner(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer runner.close()

	report := &CampaignReport{Config: cfg, PerDetector: runner.detectorBaseline()}
	sel := runner.buildSelection()
	if sel != nil {
		report.Sampling = sel.emptyReport()
	}
	skip := 0
	if cfg.Resume != nil {
		skip = cfg.Resume.Completed
		report.CampaignResult = cfg.Resume.Result
		report.Detected = cfg.Resume.Detected
		report.Aborted = cfg.Resume.Aborted
		report.Recovered = cfg.Resume.Recovered
		report.PerDetector = mergeResumeDetectors(report.PerDetector, cfg.Resume.PerDetector)
	}
	drawer := newFaultDrawer(&cfg, runner.geom)
	n := runner.pool.Len()
	batch := runner.batch
	// The injection indices this run owns and executes. Unsharded, that is
	// every index past a resumed prefix; a shard (s, K) owns the stride
	// slice i ≡ s (mod K) — exactly worker s's assignment under
	// RunCampaignParallel at workers=K, so shard reports merge
	// byte-identically to a single-node parallel run (Resume and sharding
	// are mutually exclusive, so skip is zero here when sharded). A sampled
	// campaign additionally drops the owned indices its selection skips or
	// prunes.
	owns := func(i int) bool { return !cfg.sharded() || i%cfg.ShardCount == cfg.ShardIndex }
	mine := make([]int, 0, cfg.PlannedInjections())
	for i := skip; i < cfg.Injections; i++ {
		if owns(i) && sel.executed(i) {
			mine = append(mine, i)
		}
	}
	// Progress totals cover the injections this run executes plus a resumed
	// prefix; unsharded and unsampled that is exactly cfg.Injections.
	planned := skip + len(mine)
	ct := newCampaignTelemetry(cfg.Metrics, planned, detect.Names(cfg.Detectors))
	// The fault sequence is always drawn from index 0 in serial order; draws
	// this run does not execute (a resumed prefix, other shards' indices)
	// are consumed into a discard row so owned faults stay bit-identical to
	// an unsharded run's. drawPos is the next sequence index to be drawn.
	discard := make([]inject.Fault, runner.geom.flips)
	drawPos := 0
	advanceTo := func(i int) {
		for ; drawPos < i; drawPos++ {
			drawer.nextInto(discard)
		}
	}
	if cfg.Progress != nil && skip > 0 {
		cfg.Progress(skip, planned)
	}
	// A sampled campaign's dispatch (drawn/pruned/skipped per stratum) is a
	// pure function of the selection, so the whole owned fault space is
	// accounted before any forward pass. The population the estimator
	// targets is therefore always the full fault space: at a review
	// boundary the executed prefix is the sample, the remaining selected
	// mass keeps the finite-population correction below one, and an early
	// stop leaves Drawn > Pruned+Skipped+Executed+Aborted in the strata the
	// stop cut short.
	if sel != nil {
		sel.account(report.Sampling, skip, cfg.Injections, owns)
	}
	// Sequential-stopping review windows: one window covering the whole
	// campaign normally; a TargetCI campaign reviews its interval at every
	// CheckEvery boundary.
	bounds := stopBounds(cfg.Sampling, cfg.Injections)
	mstart := 0
	for _, bound := range bounds {
		mend := mstart
		for mend < len(mine) && mine[mend] < bound {
			mend++
		}
		for base := mstart; base < mend; base += batch {
			if err := ctx.Err(); err != nil {
				report.Interrupted = true
				return report, err
			}
			hi := base + batch
			if hi > mend {
				hi = mend
			}
			rows := hi - base
			idx := runner.scratch.idx[:rows]
			faultsets := runner.scratch.faultsets[:rows]
			samples := runner.scratch.samples[:rows]
			for k := 0; k < rows; k++ {
				i := mine[base+k]
				idx[k] = i
				advanceTo(i)
				faultsets[k] = runner.scratch.faultRow(k, runner.geom.flips)
				drawer.nextInto(faultsets[k])
				drawPos++
				samples[k] = i % n
			}
			start := time.Now()
			outs, errs := runner.runBatch(0, idx, faultsets, samples)
			// Latency accounting stays per injection so the histogram's count
			// matches the injection counters in both modes; a batched pass
			// amortizes its wall time evenly over its rows.
			per := time.Since(start) / time.Duration(rows)
			if cfg.Progress != nil {
				cfg.Progress(skip+hi, planned)
			}
			if batch > 1 {
				ct.recordBatch(rows, batch)
			}
			for k := 0; k < rows; k++ {
				if errs[k] != nil {
					var ie *InjectionError
					if !errors.As(errs[k], &ie) {
						return nil, errs[k]
					}
					report.Aborted++
					ct.recordAborted()
					if sel != nil {
						sel.observe(report.Sampling, idx[k], outs[k])
						outs[k].Index = idx[k]
					}
					if cfg.KeepTrace {
						report.Trace = append(report.Trace, traceCopy(outs[k]))
					}
					if cfg.MaxAborts > 0 && report.Aborted > cfg.MaxAborts {
						return report, fmt.Errorf("goldeneye: %d aborted injections exceed MaxAborts=%d: %w",
							report.Aborted, cfg.MaxAborts, ie)
					}
					continue
				}
				out := outs[k]
				if sel != nil {
					sel.observe(report.Sampling, idx[k], out)
					out.Index = idx[k]
				}
				if out.Aborted {
					// A RecoverAbort detection discarded this inference: counted
					// in Aborted (and the detector breakdown) but excluded from
					// the metric aggregates and the MaxAborts threshold.
					report.Aborted++
					report.Detected++
					ct.recordAborted()
					ct.recordDetections(out.DetectedBy, false)
					report.recordDetections(out)
					if cfg.KeepTrace {
						report.Trace = append(report.Trace, traceCopy(out))
					}
					continue
				}
				ct.record(out.Mismatch, out.NonFinite, out.Detected, per)
				ct.recordDetections(out.DetectedBy, out.Recovered)
				report.Record(out.Mismatch, out.DeltaLoss, out.NonFinite)
				if out.Detected {
					report.Detected++
				}
				if out.Recovered {
					report.Recovered++
				}
				report.recordDetections(out)
				if cfg.KeepTrace {
					report.Trace = append(report.Trace, traceCopy(out))
				}
			}
		}
		mstart = mend
		if sel != nil && cfg.Sampling.TargetCI > 0 && bound < cfg.Injections &&
			report.Sampling.CIHalfWidth() <= cfg.Sampling.TargetCI {
			report.Sampling.StopIndex = bound
			break
		}
	}
	ct.publishSampling(report.Sampling)
	ct.publishCoverage(report)
	return report, nil
}

// RunCampaignParallel shards a campaign across worker simulators built by
// build (each must wrap an identical, independently allocated model — e.g.
// a fresh zoo load). The fault sequence is drawn up front from cfg.Seed, so
// the injected faults are exactly those of the serial RunCampaign; only
// floating-point aggregation order differs (Welford merge).
//
// Batching composes with sharding: each worker packs its stride-assigned
// injection indices into cfg.BatchSize-row passes, so total throughput
// scales with both levers while the merged report stays bit-identical to
// the serial campaign's (modulo the documented Welford merge order).
//
// The lifecycle semantics of RunCampaign apply per worker: cancellation
// stops every worker at its next injection boundary and returns the merged
// partial report with ctx.Err(); a panicking injection aborts only that
// injection (the sibling workers continue); and a worker goroutine that
// panics outside an injection surfaces as that shard's error rather than
// crashing the process. The MaxAborts threshold is enforced across all
// workers combined.
func RunCampaignParallel(ctx context.Context, cfg CampaignConfig, workers int, build func() (*Simulator, error)) (*CampaignReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Normalize an inert sampling plan away before anything else (the serial
	// delegation below does the same), so the plan's presence cannot perturb
	// exhaustive-campaign byte identity.
	if !cfg.Sampling.Active() {
		cfg.Sampling = nil
	}
	if workers <= 1 {
		sim, err := build()
		if err != nil {
			return nil, err
		}
		return sim.RunCampaign(ctx, cfg)
	}
	if cfg.sharded() {
		// A shard is already one stride slice of the campaign; running it
		// across a worker pool would nest two stride assignments and break
		// the byte-identity contract MergeShardReports depends on. The
		// fleet, not the per-node worker pool, provides the parallelism.
		return nil, configErrf("ShardCount",
			"sharded campaigns run serially (workers=1); got workers=%d for shard %d/%d",
			workers, cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.Injections < workers {
		workers = cfg.Injections
	}

	// Draw the full fault sequence once, in serial order, so the injected
	// faults are bit-identical to the serial campaign's.
	scout, err := build()
	if err != nil {
		return nil, err
	}
	g, err := scout.campaignGeometry(cfg)
	if err != nil {
		return nil, err
	}
	drawer := newFaultDrawer(&cfg, g)
	allFaults := make([][]inject.Fault, cfg.Injections)
	for i := range allFaults {
		allFaults[i] = drawer.next()
	}
	skip := 0
	if cfg.Resume != nil {
		skip = cfg.Resume.Completed
	}

	// A sampled campaign computes its selection once, up front, on a runner
	// built from the scout (the selection needs the ranger bounds the prune
	// mask derives from). Worker 0 adopts that runner instead of building
	// its own — the setup work (weight quantization, calibration, clean
	// references) is deterministic, so the adoption changes nothing but
	// avoids repeating it.
	var scoutRunner *campaignRunner
	var sel *campaignSelection
	if cfg.Sampling != nil {
		scoutRunner, err = scout.newRunner(ctx, cfg)
		if err != nil {
			return nil, err
		}
		sel = scoutRunner.buildSelection()
	}
	progressTotal := cfg.Injections
	if sel != nil {
		progressTotal = sel.executedCount()
	}

	// Progress aggregates across workers through one shared counter; the
	// callback sees a monotonic cumulative count, never per-shard values.
	var progressDone atomic.Int64
	progressDone.Store(int64(skip))
	reportProgress := func(executed int) {
		if cfg.Progress == nil {
			return
		}
		cfg.Progress(int(progressDone.Add(int64(executed))), progressTotal)
	}
	if cfg.Progress != nil && skip > 0 {
		cfg.Progress(skip, progressTotal)
	}

	// A worker hitting a fatal error (abort threshold, failed build) stops
	// its siblings at their next injection boundary instead of letting
	// them run the campaign to completion for a result that is discarded.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()

	type shard struct {
		report      *CampaignReport
		err         error
		interrupted bool

		// fp is the worker's fault-free false-positive baseline. Every
		// worker measures the identical (deterministic) sweep, so the merge
		// takes it from one shard only.
		fp map[string]metrics.DetectorStats
	}
	n := g.pool.Len()
	ct := newCampaignTelemetry(cfg.Metrics, progressTotal, detect.Names(cfg.Detectors))
	shards := make([]shard, workers)
	// Sequential stopping runs the workers in lockstep review rounds: after
	// each round's window, the last worker to arrive merges every worker's
	// estimator state (safe: the others are parked on the barrier, and a
	// departed worker published its report before leaving) and decides
	// whether the campaign stops at that boundary.
	bounds := stopBounds(cfg.Sampling, cfg.Injections)
	var barrier *ciBarrier
	if sel != nil && cfg.Sampling.TargetCI > 0 {
		barrier = newCIBarrier(workers, func(round int) int {
			bound := bounds[round]
			if bound >= cfg.Injections {
				return 0 // final boundary: nothing left to stop early
			}
			reviewed := sel.emptyReport()
			for i := range shards {
				if shards[i].report != nil && shards[i].report.Sampling != nil {
					// Same strata by construction; Merge cannot fail.
					_ = reviewed.Merge(shards[i].report.Sampling)
				}
			}
			if reviewed.CIHalfWidth() <= cfg.Sampling.TargetCI {
				return bound
			}
			return 0
		})
	}
	var aborted atomic.Int64
	if cfg.Resume != nil {
		// Prior aborts count toward the shared threshold.
		aborted.Store(int64(cfg.Resume.Aborted))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Last line of defense: a panic outside the per-injection
			// isolation (runner setup, telemetry) becomes the shard's
			// error instead of crashing the whole process.
			defer func() {
				if p := recover(); p != nil {
					shards[w].err = fmt.Errorf("worker panicked outside an injection: %v", p)
					stopWorkers()
				}
			}()
			// Exactly once per worker, on every exit path — error, abort
			// threshold, cancellation, normal completion — so workers parked
			// on a review round never wait for a departed sibling.
			if barrier != nil {
				defer barrier.leave()
			}
			if cfg.Metrics != nil {
				// Per-worker shard wall time, for spotting stragglers in
				// the metrics dump.
				shardGauge := cfg.Metrics.Gauge(telemetry.Label(MetricCampaignShardTime, "worker", strconv.Itoa(w)))
				defer func(start time.Time) { shardGauge.Set(time.Since(start).Seconds()) }(time.Now())
			}
			sim := scout
			if w > 0 { // reuse the scout for worker 0
				var berr error
				sim, berr = build()
				if berr != nil {
					shards[w].err = berr
					stopWorkers()
					return
				}
			}
			// Worker 0 adopts the pre-built scout runner of a sampled
			// campaign (see above); every other worker prepares its own.
			runner := scoutRunner
			if w != 0 || runner == nil {
				var rerr error
				runner, rerr = sim.newRunner(wctx, cfg)
				if rerr != nil {
					if wctx.Err() != nil && errors.Is(rerr, wctx.Err()) {
						shards[w].interrupted = true
						shards[w].report = &CampaignReport{}
						return
					}
					shards[w].err = rerr
					stopWorkers()
					return
				}
			}
			defer runner.close()
			shards[w].fp = runner.detectorBaseline()
			var shardWork *telemetry.Counter
			if cfg.Metrics != nil {
				shardWork = cfg.Metrics.Counter(telemetry.Label(MetricCampaignShardWork, "worker", strconv.Itoa(w)))
			}
			rep := &CampaignReport{}
			if sel != nil {
				rep.Sampling = sel.emptyReport()
			}
			// Published before the loop so the stopping barrier's check can
			// read this worker's estimator state; the barrier's mutex orders
			// those reads against the writes below.
			shards[w].report = rep
			// The worker's stride-assigned injection indices — minus, for a
			// sampled campaign, the ones the selection skips or prunes —
			// batched into groups of the campaign's pack size. Grouping
			// non-contiguous indices is fine: each row is an independent
			// (fault, sample) pair, and trace order within the shard stays
			// the stride order the merge below expects.
			var mine []int
			for i := w; i < cfg.Injections; i += workers {
				if i >= skip && sel.executed(i) {
					mine = append(mine, i)
				}
			}
			// The worker's whole stride slice is accounted up front (dispatch
			// is analytic); the estimator's population is the full fault
			// space even when a review boundary stops execution early.
			if sel != nil {
				sel.account(rep.Sampling, skip, cfg.Injections,
					func(i int) bool { return i%workers == w })
			}
			batch := runner.batch
			mstart := 0
		rounds:
			for round, bound := range bounds {
				mend := mstart
				for mend < len(mine) && mine[mend] < bound {
					mend++
				}
				for base := mstart; base < mend; base += batch {
					if wctx.Err() != nil {
						shards[w].interrupted = true
						break rounds
					}
					hi := base + batch
					if hi > mend {
						hi = mend
					}
					idx := mine[base:hi]
					faultsets := runner.scratch.faultsets[:len(idx)]
					samples := runner.scratch.samples[:len(idx)]
					for k, i := range idx {
						faultsets[k] = allFaults[i]
						samples[k] = i % n
					}
					start := time.Now()
					outs, errsB := runner.runBatch(w, idx, faultsets, samples)
					per := time.Since(start) / time.Duration(len(idx))
					reportProgress(len(idx))
					if batch > 1 {
						ct.recordBatch(len(idx), batch)
					}
					for k := range idx {
						if errsB[k] != nil {
							var ie *InjectionError
							if !errors.As(errsB[k], &ie) {
								shards[w].err = errsB[k]
								stopWorkers()
								return
							}
							total := aborted.Add(1)
							ct.recordAborted()
							rep.Aborted++
							if sel != nil {
								sel.observe(rep.Sampling, idx[k], outs[k])
								outs[k].Index = idx[k]
							}
							if cfg.KeepTrace {
								rep.Trace = append(rep.Trace, traceCopy(outs[k]))
							}
							if cfg.MaxAborts > 0 && total > int64(cfg.MaxAborts) {
								shards[w].report = rep
								shards[w].err = fmt.Errorf("%d aborted injections exceed MaxAborts=%d: %w",
									total, cfg.MaxAborts, ie)
								stopWorkers()
								return
							}
							continue
						}
						out := outs[k]
						if sel != nil {
							sel.observe(rep.Sampling, idx[k], out)
							out.Index = idx[k]
						}
						if out.Aborted {
							// RecoverAbort discard: counted in Aborted and the
							// detector breakdown, excluded from aggregates and
							// the shared MaxAborts threshold.
							rep.Aborted++
							rep.Detected++
							ct.recordAborted()
							ct.recordDetections(out.DetectedBy, false)
							rep.recordDetections(out)
							if cfg.KeepTrace {
								rep.Trace = append(rep.Trace, traceCopy(out))
							}
							continue
						}
						ct.record(out.Mismatch, out.NonFinite, out.Detected, per)
						ct.recordDetections(out.DetectedBy, out.Recovered)
						if shardWork != nil {
							shardWork.Inc()
						}
						rep.Record(out.Mismatch, out.DeltaLoss, out.NonFinite)
						if out.Detected {
							rep.Detected++
						}
						if out.Recovered {
							rep.Recovered++
						}
						rep.recordDetections(out)
						if cfg.KeepTrace {
							rep.Trace = append(rep.Trace, traceCopy(out))
						}
					}
				}
				mstart = mend
				if barrier != nil && barrier.await(round) > 0 {
					break
				}
			}
		}(w)
	}
	wg.Wait()

	// Fatal shard errors take precedence over partial results.
	for w, sh := range shards {
		if sh.err != nil {
			// Wrap with the shard index so a failed campaign is
			// diagnosable from the progress output (which shard stalled,
			// which worker's build failed).
			return nil, fmt.Errorf("goldeneye: campaign worker %d/%d: %w", w, workers, sh.err)
		}
	}
	merged := &CampaignReport{Config: cfg}
	// The false-positive baseline is deterministic and identical across
	// workers, so it merges from one shard only; per-shard detections and
	// recoveries sum on top of it.
	for _, sh := range shards {
		if sh.fp != nil {
			merged.PerDetector = sh.fp
			break
		}
	}
	if cfg.Resume != nil {
		merged.CampaignResult = cfg.Resume.Result
		merged.Detected = cfg.Resume.Detected
		merged.Aborted = cfg.Resume.Aborted
		merged.Recovered = cfg.Resume.Recovered
		merged.PerDetector = mergeResumeDetectors(merged.PerDetector, cfg.Resume.PerDetector)
	}
	if cfg.KeepTrace && sel == nil {
		merged.Trace = make([]InjectionOutcome, cfg.Injections)
	}
	if sel != nil {
		merged.Sampling = sel.emptyReport()
	}
	for w, sh := range shards {
		merged.Interrupted = merged.Interrupted || sh.interrupted
		merged.CampaignResult.Merge(sh.report.CampaignResult)
		merged.Detected += sh.report.Detected
		merged.Aborted += sh.report.Aborted
		merged.Recovered += sh.report.Recovered
		merged.PerDetector = mergeResumeDetectors(merged.PerDetector, sh.report.PerDetector)
		if sh.report.Sampling != nil {
			// Worker-index order — the same Welford merge order the campaign
			// aggregates use. Same strata by construction; Merge cannot fail.
			_ = merged.Sampling.Merge(sh.report.Sampling)
		}
		if cfg.KeepTrace && sel == nil {
			for k, out := range sh.report.Trace {
				merged.Trace[w+k*workers] = out
			}
		}
	}
	if barrier != nil {
		merged.Sampling.StopIndex = barrier.stopIndex()
	}
	if cfg.KeepTrace && sel != nil {
		// A sampled worker's trace holds only its executed indices, so the
		// dense stride interleave above does not apply: reassemble in
		// ascending global-index order with one cursor per worker — exactly
		// the order the serial sampled path records (entries can be missing
		// when the campaign stopped early or was interrupted).
		cursors := make([]int, workers)
		for i := 0; i < cfg.Injections; i++ {
			if !sel.executed(i) {
				continue
			}
			sh := shards[i%workers].report
			if c := cursors[i%workers]; c < len(sh.Trace) {
				merged.Trace = append(merged.Trace, sh.Trace[c])
				cursors[i%workers]++
			}
		}
	}
	ct.publishSampling(merged.Sampling)
	ct.publishCoverage(merged)
	if merged.Interrupted {
		return merged, ctx.Err()
	}
	return merged, nil
}
