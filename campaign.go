package goldeneye

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goldeneye/internal/inject"
	"goldeneye/internal/metrics"
	"goldeneye/internal/nn"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/rng"
	"goldeneye/internal/telemetry"
	"goldeneye/internal/tensor"
	"goldeneye/internal/train"
)

// CampaignConfig specifies a fault-injection campaign (paper §IV-C): a
// number of unique single-bit flips at a chosen layer and site, each applied
// to one inference, with mismatch and ΔLoss recorded against the fault-free
// reference under the same number format.
type CampaignConfig struct {
	// Format is the emulated number system faults are injected into.
	Format numfmt.Format

	// Site selects data-value or metadata injection.
	Site inject.Site

	// Target selects neuron (activation) or weight corruption.
	Target inject.Target

	// FaultKind selects the error model (flip, stuck-at-0/1, burst); the
	// zero value is the paper's default transient single-bit flip.
	FaultKind inject.FaultKind

	// Layer is the layer visit index to inject into.
	Layer int

	// Injections is the number of unique faults (the paper uses 1000 per
	// layer and site).
	Injections int

	// FlipsPerInjection is the number of simultaneous bit flips per
	// injection (0 or 1 = the single-bit model; higher values model
	// multi-bit upsets). Each flip is drawn independently.
	FlipsPerInjection int

	// Seed determines the fault sequence.
	Seed uint64

	// Pool is the evaluation pool; injection i uses sample i mod Pool.Len()
	// so faults spread evenly over inputs. Its Batch geometry is the
	// campaign's default injection batch size when BatchSize is unset.
	Pool *EvalPool

	// X and Y are the raw evaluation pool.
	//
	// Deprecated: set Pool instead; X/Y remain supported for one release
	// and are equivalent to Pool = &EvalPool{X: X, Y: Y}. Setting both Pool
	// and X/Y is an error.
	X *tensor.Tensor
	Y []int

	// BatchSize is the number of distinct faults packed into one batched
	// forward pass (the paper's batching lever, §IV-B). Each batch row
	// carries its own fault against its own pool sample, and — because
	// format metadata is computed per row (numfmt.AxisBatch) — the report
	// is bit-identical to the batch-1 path under the same seed. 0 or 1
	// selects the serial path; weight-target campaigns always run serially
	// (weights are shared by every row of a batch). When 0, Pool.Batch is
	// used if set.
	BatchSize int

	// UseRanger enables the range detector (on by default in the paper;
	// here explicit).
	UseRanger bool

	// EmulateNetwork quantizes all CONV/LINEAR activations to Format during
	// every inference, so the campaign models a network *running in* the
	// studied format rather than FP32 with one quantized layer.
	EmulateNetwork bool

	// QuantizeWeights converts weights to Format for the campaign.
	QuantizeWeights bool

	// KeepTrace records each injection's outcome (needed by the metric-
	// convergence experiment); costs memory proportional to Injections.
	KeepTrace bool

	// Metrics, when non-nil, receives campaign telemetry: injection
	// progress/mismatch/latency counters and per-layer forward-time
	// histograms (see internal/telemetry/README.md for the metric
	// inventory). It does not alter results; parallel campaigns share one
	// registry across workers via lock-free atomics.
	Metrics *telemetry.Registry

	// MeasureDMR additionally re-executes every injected inference without
	// the transient fault and counts an injection as *detected* when the
	// two outputs differ — dual modular redundancy, one of the software-
	// directed protection techniques the paper positions GoldenEye for
	// (§V-B). Permanent corruption (weight faults) persists across both
	// executions and is structurally undetectable by DMR. Doubles the
	// campaign's inference cost.
	MeasureDMR bool

	// MaxAborts bounds degraded-mode operation: a panicking injection
	// (e.g. metadata corruption producing a degenerate scale) is recovered
	// and counted as aborted rather than crashing the campaign, but once
	// more than MaxAborts injections have aborted the campaign fails with
	// the last *InjectionError. Zero or negative means unlimited — the
	// campaign always completes in degraded mode.
	MaxAborts int

	// Resume continues a previously interrupted campaign from persisted
	// state (see internal/checkpoint). The already-executed prefix of the
	// deterministic fault sequence is drawn and discarded, so a resumed
	// campaign's report is bit-identical to an uninterrupted run's.
	// Incompatible with KeepTrace (traces are not persisted).
	Resume *CampaignResume
}

// CampaignResume is the state of an interrupted campaign: how many
// injections were executed (recorded + aborted) and the aggregates they
// produced. Serial resumption continues the Welford accumulators in place,
// so the final moments carry no merge reassociation.
type CampaignResume struct {
	// Completed is the number of injections already executed — the length
	// of the fault-sequence prefix to replay without running inference.
	Completed int

	// Result is the interrupted run's aggregate over the prefix.
	Result metrics.CampaignResult

	// Detected and Aborted restore the report fields outside
	// metrics.CampaignResult.
	Detected int
	Aborted  int
}

// InjectionError is one injection that aborted: a panic during the injected
// inference (degenerate metadata scales, non-finite propagation into an
// assertion, a corrupted hook) was recovered and converted into this typed
// error. Campaigns continue in degraded mode past aborted injections,
// counting them in CampaignReport.Aborted, until CampaignConfig.MaxAborts
// is exceeded.
type InjectionError struct {
	// Shard is the worker index that executed the injection (0 for serial
	// campaigns).
	Shard int

	// Injection is the global injection index within the campaign.
	Injection int

	// Fault is the first flip of the offending injection.
	Fault inject.Fault

	// Panic is the recovered panic value.
	Panic interface{}
}

// Error renders the abort with enough context to replay it (the fault plus
// its position in the deterministic sequence).
func (e *InjectionError) Error() string {
	return fmt.Sprintf("goldeneye: injection %d aborted on worker %d (%s): panic: %v",
		e.Injection, e.Shard, e.Fault, e.Panic)
}

// InjectionOutcome is one recorded injection (with KeepTrace).
type InjectionOutcome struct {
	// Fault is the injection's first flip; Extra holds the remainder for
	// multi-bit injections.
	Fault     inject.Fault
	Extra     []inject.Fault
	Sample    int
	Mismatch  bool
	DeltaLoss float64

	// NonFinite reports whether the faulty output contained NaN/Inf.
	NonFinite bool

	// Detected reports whether DMR re-execution flagged the fault (only
	// meaningful with MeasureDMR).
	Detected bool

	// Aborted marks an injection whose inference panicked and was
	// recovered; its metric fields are zero.
	Aborted bool
}

// CampaignReport is a campaign's aggregated result plus optional trace.
type CampaignReport struct {
	metrics.CampaignResult

	Config CampaignConfig
	Trace  []InjectionOutcome

	// Detected counts injections flagged by DMR re-execution (only
	// populated with MeasureDMR).
	Detected int

	// Aborted counts injections whose inference panicked and was recovered
	// (degraded mode); they are excluded from the metric aggregates.
	Aborted int

	// Interrupted marks a report cut short by context cancellation; the
	// aggregates cover exactly the injections completed before the cut.
	Interrupted bool
}

// DetectionCoverage returns the fraction of injections DMR detected.
func (r *CampaignReport) DetectionCoverage() float64 {
	if r.Injections == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Injections)
}

// evalPool resolves the configured evaluation pool, honoring the
// deprecated X/Y pair.
func (cfg *CampaignConfig) evalPool() (*EvalPool, error) {
	if cfg.Pool != nil {
		if cfg.X != nil || cfg.Y != nil {
			return nil, fmt.Errorf("goldeneye: set CampaignConfig.Pool or the deprecated X/Y pair, not both")
		}
		if err := cfg.Pool.validate(); err != nil {
			return nil, err
		}
		return cfg.Pool, nil
	}
	if cfg.X == nil || cfg.X.Dim(0) == 0 || cfg.X.Dim(0) != len(cfg.Y) {
		return nil, fmt.Errorf("goldeneye: campaign pool mismatch")
	}
	return &EvalPool{X: cfg.X, Y: cfg.Y}, nil
}

// packBatch resolves the campaign's injection batch size: BatchSize if set,
// else the pool's Batch geometry, else 1 (serial). Weight-target campaigns
// always pack 1 — a weight fault corrupts state shared by every row of a
// batch, so distinct weight faults cannot share a forward pass.
func (cfg *CampaignConfig) packBatch() int {
	b := cfg.BatchSize
	if b <= 0 && cfg.Pool != nil {
		b = cfg.Pool.Batch
	}
	if b < 1 || cfg.Target == inject.TargetWeight {
		b = 1
	}
	return b
}

// campaignRunner holds one worker's prepared campaign state: quantized
// weights, range profile, and fault-free references.
type campaignRunner struct {
	sim       *Simulator
	cfg       CampaignConfig
	pool      *EvalPool
	batch     int
	backup    *inject.WeightBackup
	ranger    *inject.RangeProfile
	cleanPred []int
	cleanLoss []float64
	elems     int
	flips     int

	// timing is this runner's per-layer forward timer (nil without
	// cfg.Metrics). One per runner because the hook closure carries
	// per-pass state; the histograms it feeds are shared and atomic.
	timing *nn.HookSet
}

// campaignGeometry validates cfg against the simulator and returns the
// resolved evaluation pool plus the fault-drawing geometry (target element
// count and flips per injection).
func (s *Simulator) campaignGeometry(cfg CampaignConfig) (pool *EvalPool, elems, flips int, err error) {
	if cfg.Format == nil {
		return nil, 0, 0, fmt.Errorf("goldeneye: campaign requires a format")
	}
	if cfg.Injections <= 0 {
		return nil, 0, 0, fmt.Errorf("goldeneye: campaign requires a positive injection count")
	}
	if pool, err = cfg.evalPool(); err != nil {
		return nil, 0, 0, err
	}
	if cfg.Site == inject.SiteMetadata && inject.MetaBitWidth(cfg.Format) == 0 {
		return nil, 0, 0, fmt.Errorf("goldeneye: format %s has no metadata to inject into", cfg.Format.Name())
	}
	if cfg.Resume != nil {
		if cfg.KeepTrace {
			return nil, 0, 0, fmt.Errorf("goldeneye: resume does not support KeepTrace campaigns")
		}
		if cfg.Resume.Completed < 0 || cfg.Resume.Completed > cfg.Injections {
			return nil, 0, 0, fmt.Errorf("goldeneye: resume point %d outside campaign of %d injections",
				cfg.Resume.Completed, cfg.Injections)
		}
	}
	elems = s.sizes[cfg.Layer]
	if cfg.Target == inject.TargetNeuron && elems == 0 {
		return nil, 0, 0, fmt.Errorf("goldeneye: unknown layer index %d", cfg.Layer)
	}
	if cfg.Target == inject.TargetWeight {
		p, err := s.widx.ParamOfLayer(cfg.Layer)
		if err != nil {
			return nil, 0, 0, err
		}
		elems = p.Value.Len()
	}
	flips = cfg.FlipsPerInjection
	if flips <= 0 {
		flips = 1
	}
	return pool, elems, flips, nil
}

// newRunner validates cfg against the simulator and computes the
// fault-free references, checking ctx between forward passes so a SIGINT
// during setup (range profiling, clean references) aborts promptly.
// Callers must invoke close() to restore weights.
func (s *Simulator) newRunner(ctx context.Context, cfg CampaignConfig) (*campaignRunner, error) {
	pool, elems, flips, err := s.campaignGeometry(cfg)
	if err != nil {
		return nil, err
	}
	r := &campaignRunner{sim: s, cfg: cfg, pool: pool, batch: cfg.packBatch(), elems: elems, flips: flips}
	if cfg.Metrics != nil {
		r.timing = layerTimingHooks(cfg.Metrics)
	}
	r.backup = inject.BackupWeights(s.model)
	// Any early exit below must restore the weights it may have quantized.
	fail := func(err error) (*campaignRunner, error) {
		r.backup.Restore()
		return nil, err
	}
	if cfg.QuantizeWeights {
		inject.QuantizeWeights(s.model, cfg.Format)
	}
	if cfg.UseRanger {
		r.ranger = inject.ProfileRanges(ctx, s.model, pool.X, 16, r.baseHooks())
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
	}

	// Fault-free reference per pool sample. Serial campaigns compute them
	// at batch 1; batched campaigns batch the sweep under per-row emulation
	// (numfmt.AxisBatch), which is bit-identical per sample to the batch-1
	// references.
	refHooks := r.baseHooks()
	if r.batch > 1 {
		refHooks = r.batchHooks()
	}
	n := pool.Len()
	r.cleanPred = make([]int, n)
	r.cleanLoss = make([]float64, n)
	cleanCtx := nn.NewContext(r.withTiming(refHooks))
	for lo := 0; lo < n; lo += r.batch {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		hi := lo + r.batch
		if hi > n {
			hi = n
		}
		logits := nn.Forward(cleanCtx, s.model, pool.X.Slice(lo, hi))
		copy(r.cleanPred[lo:hi], logits.ArgMaxRows())
		copy(r.cleanLoss[lo:hi], train.CrossEntropyPerSample(logits, pool.Y[lo:hi]))
	}
	return r, nil
}

func (r *campaignRunner) close() { r.backup.Restore() }

func (r *campaignRunner) baseHooks() *nn.HookSet {
	h := nn.NewHookSet()
	if r.cfg.EmulateNetwork {
		format := r.cfg.Format
		h.PostForward(nn.DefaultLayers(), func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
			return format.Emulate(t)
		})
	}
	return h
}

// batchHooks is baseHooks for batched passes: network emulation runs
// per batch row (numfmt.AxisBatch), so each row's metadata — INT scale,
// AFP bias, BFP shared exponents — is computed from that row alone and the
// row stays bit-identical to its batch-1 inference.
func (r *campaignRunner) batchHooks() *nn.HookSet {
	h := nn.NewHookSet()
	if r.cfg.EmulateNetwork {
		format := r.cfg.Format
		h.PostForward(nn.DefaultLayers(), func(_ nn.LayerInfo, t *tensor.Tensor) *tensor.Tensor {
			return numfmt.EmulateBatched(format, t)
		})
	}
	return h
}

// withTiming merges the runner's per-layer timer into h as the last hook
// set, so emulation/injection/clamp hooks registered earlier fall inside
// each layer's measured window. No-op without telemetry.
func (r *campaignRunner) withTiming(h *nn.HookSet) *nn.HookSet {
	if r.timing != nil {
		h.Merge(r.timing)
	}
	return h
}

// faultDrawer draws a campaign's deterministic fault sequence from its
// seed. It is the single drawing implementation shared by the serial and
// parallel paths (and by resume-prefix replay), so the sequences cannot
// drift apart.
type faultDrawer struct {
	src   *rng.RNG
	cfg   *CampaignConfig
	elems int
	flips int
}

// newFaultDrawer positions a drawer at the start of cfg's fault sequence.
func newFaultDrawer(cfg *CampaignConfig, elems, flips int) *faultDrawer {
	return &faultDrawer{src: rng.New(cfg.Seed), cfg: cfg, elems: elems, flips: flips}
}

// next produces the next injection's fault set.
func (d *faultDrawer) next() []inject.Fault {
	faults := make([]inject.Fault, d.flips)
	for j := range faults {
		faults[j] = inject.RandomFault(d.src, d.cfg.Format, d.cfg.Layer, d.elems, d.cfg.Site, d.cfg.Target)
		faults[j].Kind = d.cfg.FaultKind
	}
	return faults
}

// abortedOutcome is the trace placeholder for an injection whose inference
// panicked: the faults and sample are known, the metrics are not.
func abortedOutcome(faults []inject.Fault, sample int) InjectionOutcome {
	out := InjectionOutcome{Fault: faults[0], Sample: sample, Aborted: true}
	if len(faults) > 1 {
		out.Extra = faults[1:]
	}
	return out
}

// runOne executes one injected inference and returns its outcome. Weight
// corruption is undone via defer so that a panic inside the forward pass
// (recovered by runIsolated) cannot leak corrupted weights into the next
// injection.
func (r *campaignRunner) runOne(faults []inject.Fault, sample int) (out InjectionOutcome, err error) {
	cfg := r.cfg
	hooks := r.baseHooks()
	if cfg.Target == inject.TargetNeuron {
		hooks.PostForward(nn.ByIndex(cfg.Layer), inject.NeuronHookMulti(cfg.Format, faults))
	} else {
		var restores []func()
		// Undo weight corruption in reverse order so overlapping faults
		// restore correctly — deferred, so panic unwinding restores too.
		defer func() {
			for j := len(restores) - 1; j >= 0; j-- {
				restores[j]()
			}
		}()
		for _, fault := range faults {
			restore, ferr := inject.WeightFault(cfg.Format, fault, r.sim.widx)
			if ferr != nil {
				return out, ferr
			}
			restores = append(restores, restore)
		}
	}
	if r.ranger != nil {
		hooks.PostForward(nn.AllLayers(), r.ranger.ClampHook())
	}

	logits := nn.Forward(nn.NewContext(r.withTiming(hooks)), r.sim.model, r.pool.X.Slice(sample, sample+1))
	if cfg.MeasureDMR {
		// Re-execute without the transient fault; weight corruption is
		// still in place, so it escapes detection (as real DMR would).
		redo := r.baseHooks()
		if r.ranger != nil {
			redo.PostForward(nn.AllLayers(), r.ranger.ClampHook())
		}
		again := nn.Forward(nn.NewContext(r.withTiming(redo)), r.sim.model, r.pool.X.Slice(sample, sample+1))
		out.Detected = !again.AllClose(logits, 0)
	}

	faultyLoss := train.CrossEntropyPerSample(logits, r.pool.Y[sample:sample+1])[0]
	out.Fault = faults[0]
	out.Sample = sample
	out.Mismatch = logits.ArgMaxRows()[0] != r.cleanPred[sample]
	out.DeltaLoss = metrics.DeltaLoss(r.cleanLoss[sample], faultyLoss)
	out.NonFinite = logits.CountNonFinite() > 0
	if len(faults) > 1 {
		out.Extra = faults[1:]
	}
	return out, nil
}

// runIsolated executes one injection with panic isolation: a panic inside
// the injected inference is recovered and converted into an
// *InjectionError carrying the shard index and the offending fault, so one
// corrupted injection degrades the campaign instead of killing the process.
func (r *campaignRunner) runIsolated(shard, injection int, faults []inject.Fault, sample int) (out InjectionOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			out = abortedOutcome(faults, sample)
			err = &InjectionError{Shard: shard, Injection: injection, Fault: faults[0], Panic: p}
		}
	}()
	return r.runOne(faults, sample)
}

// runBatch executes a group of injections — injection idx[k] applies
// faultsets[k] to pool sample samples[k] — in one batched forward pass,
// returning per-injection outcomes and errors positionally. Each batch row
// carries its own fault under per-row format metadata, so every outcome is
// bit-identical to the serial batch-1 path. If anything inside the batched
// pass panics, the whole group falls back to per-injection serial
// execution, which reproduces the non-aborting rows bit-identically and
// confines the abort to the offending injection(s).
func (r *campaignRunner) runBatch(shard int, idx []int, faultsets [][]inject.Fault, samples []int) ([]InjectionOutcome, []error) {
	outs := make([]InjectionOutcome, len(idx))
	errs := make([]error, len(idx))
	serially := func() {
		for k := range idx {
			outs[k], errs[k] = r.runIsolated(shard, idx[k], faultsets[k], samples[k])
		}
	}
	if len(idx) == 1 || r.cfg.Target != inject.TargetNeuron {
		serially()
		return outs, errs
	}
	if !r.tryRunBatch(faultsets, samples, outs) {
		serially()
	}
	return outs, errs
}

// tryRunBatch attempts the batched pass proper; false means a panic was
// recovered and the caller must re-run the group serially.
func (r *campaignRunner) tryRunBatch(faultsets [][]inject.Fault, samples []int, outs []InjectionOutcome) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			ok = false
		}
	}()
	cfg := r.cfg
	xb := tensor.Gather0(r.pool.X, samples)
	yb := make([]int, len(samples))
	for k, s := range samples {
		yb[k] = r.pool.Y[s]
	}
	// Same hook registration order as the serial path: emulation, then
	// injection at the target layer, then the range detector's clamp.
	hooks := r.batchHooks()
	hooks.PostForward(nn.ByIndex(cfg.Layer), inject.NeuronHookBatched(cfg.Format, faultsets))
	if r.ranger != nil {
		hooks.PostForward(nn.AllLayers(), r.ranger.ClampHook())
	}
	logits := nn.Forward(nn.NewContext(r.withTiming(hooks)), r.sim.model, xb)
	var again *tensor.Tensor
	if cfg.MeasureDMR {
		redo := r.batchHooks()
		if r.ranger != nil {
			redo.PostForward(nn.AllLayers(), r.ranger.ClampHook())
		}
		again = nn.Forward(nn.NewContext(r.withTiming(redo)), r.sim.model, xb)
	}
	preds := logits.ArgMaxRows()
	losses := train.CrossEntropyPerSample(logits, yb)
	nonFinite := logits.NonFiniteRows()
	for k := range outs {
		out := InjectionOutcome{
			Fault:     faultsets[k][0],
			Sample:    samples[k],
			Mismatch:  preds[k] != r.cleanPred[samples[k]],
			DeltaLoss: metrics.DeltaLoss(r.cleanLoss[samples[k]], losses[k]),
			NonFinite: nonFinite[k] > 0,
		}
		if len(faultsets[k]) > 1 {
			out.Extra = faultsets[k][1:]
		}
		if again != nil {
			out.Detected = !again.Slice(k, k+1).AllClose(logits.Slice(k, k+1), 0)
		}
		outs[k] = out
	}
	return true
}

// RunCampaign executes the configured campaign and returns its report. The
// model's weights are restored to their pre-campaign values before
// returning.
//
// Lifecycle semantics:
//   - Batching: with cfg.BatchSize > 1 (or a Pool.Batch geometry), up to
//     BatchSize distinct neuron faults share one batched forward pass,
//     each against its own pool sample under per-row format metadata. The
//     report — aggregates, Detected/Aborted counts, and trace — is
//     bit-identical to the serial batch-1 path under the same seed.
//   - Cancellation: ctx is checked cooperatively before every injection
//     group (every injection when serial); on cancellation the partial
//     report (aggregating exactly the completed prefix, Interrupted set)
//     is returned together with ctx.Err().
//   - Panic isolation: an injection whose inference panics is recovered,
//     counted in the report's Aborted field, and the campaign continues in
//     degraded mode until more than cfg.MaxAborts injections abort. A
//     panic inside a batched pass re-runs that group serially, so the
//     abort lands on the offending injection only.
//   - Resume: with cfg.Resume, the already-executed fault prefix is drawn
//     but not re-run and the Welford accumulators continue from the
//     persisted state, so the final report is bit-identical to an
//     uninterrupted run's.
func (s *Simulator) RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runner, err := s.newRunner(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer runner.close()

	report := &CampaignReport{Config: cfg}
	skip := 0
	if cfg.Resume != nil {
		skip = cfg.Resume.Completed
		report.CampaignResult = cfg.Resume.Result
		report.Detected = cfg.Resume.Detected
		report.Aborted = cfg.Resume.Aborted
	}
	ct := newCampaignTelemetry(cfg.Metrics, cfg.Injections)
	drawer := newFaultDrawer(&cfg, runner.elems, runner.flips)
	n := runner.pool.Len()
	batch := runner.batch
	// A resumed campaign replays the prefix of the deterministic sequence
	// without executing it.
	for i := 0; i < skip; i++ {
		drawer.next()
	}
	for base := skip; base < cfg.Injections; base += batch {
		if err := ctx.Err(); err != nil {
			report.Interrupted = true
			return report, err
		}
		hi := base + batch
		if hi > cfg.Injections {
			hi = cfg.Injections
		}
		rows := hi - base
		idx := make([]int, rows)
		faultsets := make([][]inject.Fault, rows)
		samples := make([]int, rows)
		for k := 0; k < rows; k++ {
			idx[k] = base + k
			faultsets[k] = drawer.next()
			samples[k] = (base + k) % n
		}
		start := time.Now()
		outs, errs := runner.runBatch(0, idx, faultsets, samples)
		// Latency accounting stays per injection so the histogram's count
		// matches the injection counters in both modes; a batched pass
		// amortizes its wall time evenly over its rows.
		per := time.Since(start) / time.Duration(rows)
		if batch > 1 {
			ct.recordBatch(rows, batch)
		}
		for k := 0; k < rows; k++ {
			if errs[k] != nil {
				var ie *InjectionError
				if !errors.As(errs[k], &ie) {
					return nil, errs[k]
				}
				report.Aborted++
				ct.recordAborted()
				if cfg.KeepTrace {
					report.Trace = append(report.Trace, outs[k])
				}
				if cfg.MaxAborts > 0 && report.Aborted > cfg.MaxAborts {
					return report, fmt.Errorf("goldeneye: %d aborted injections exceed MaxAborts=%d: %w",
						report.Aborted, cfg.MaxAborts, ie)
				}
				continue
			}
			out := outs[k]
			ct.record(out.Mismatch, out.NonFinite, out.Detected, per)
			report.Record(out.Mismatch, out.DeltaLoss, out.NonFinite)
			if out.Detected {
				report.Detected++
			}
			if cfg.KeepTrace {
				report.Trace = append(report.Trace, out)
			}
		}
	}
	return report, nil
}

// RunCampaignParallel shards a campaign across worker simulators built by
// build (each must wrap an identical, independently allocated model — e.g.
// a fresh zoo load). The fault sequence is drawn up front from cfg.Seed, so
// the injected faults are exactly those of the serial RunCampaign; only
// floating-point aggregation order differs (Welford merge).
//
// Batching composes with sharding: each worker packs its stride-assigned
// injection indices into cfg.BatchSize-row passes, so total throughput
// scales with both levers while the merged report stays bit-identical to
// the serial campaign's (modulo the documented Welford merge order).
//
// The lifecycle semantics of RunCampaign apply per worker: cancellation
// stops every worker at its next injection boundary and returns the merged
// partial report with ctx.Err(); a panicking injection aborts only that
// injection (the sibling workers continue); and a worker goroutine that
// panics outside an injection surfaces as that shard's error rather than
// crashing the process. The MaxAborts threshold is enforced across all
// workers combined.
func RunCampaignParallel(ctx context.Context, cfg CampaignConfig, workers int, build func() (*Simulator, error)) (*CampaignReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 {
		sim, err := build()
		if err != nil {
			return nil, err
		}
		return sim.RunCampaign(ctx, cfg)
	}
	if cfg.Injections < workers {
		workers = cfg.Injections
	}

	// Draw the full fault sequence once, in serial order, so the injected
	// faults are bit-identical to the serial campaign's.
	scout, err := build()
	if err != nil {
		return nil, err
	}
	pool, elems, flips, err := scout.campaignGeometry(cfg)
	if err != nil {
		return nil, err
	}
	drawer := newFaultDrawer(&cfg, elems, flips)
	allFaults := make([][]inject.Fault, cfg.Injections)
	for i := range allFaults {
		allFaults[i] = drawer.next()
	}
	skip := 0
	if cfg.Resume != nil {
		skip = cfg.Resume.Completed
	}

	// A worker hitting a fatal error (abort threshold, failed build) stops
	// its siblings at their next injection boundary instead of letting
	// them run the campaign to completion for a result that is discarded.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()

	type shard struct {
		report      *CampaignReport
		err         error
		interrupted bool
	}
	n := pool.Len()
	ct := newCampaignTelemetry(cfg.Metrics, cfg.Injections)
	shards := make([]shard, workers)
	var aborted atomic.Int64
	if cfg.Resume != nil {
		// Prior aborts count toward the shared threshold.
		aborted.Store(int64(cfg.Resume.Aborted))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Last line of defense: a panic outside the per-injection
			// isolation (runner setup, telemetry) becomes the shard's
			// error instead of crashing the whole process.
			defer func() {
				if p := recover(); p != nil {
					shards[w].err = fmt.Errorf("worker panicked outside an injection: %v", p)
					stopWorkers()
				}
			}()
			if cfg.Metrics != nil {
				// Per-worker shard wall time, for spotting stragglers in
				// the metrics dump.
				shardGauge := cfg.Metrics.Gauge(telemetry.Label(MetricCampaignShardTime, "worker", strconv.Itoa(w)))
				defer func(start time.Time) { shardGauge.Set(time.Since(start).Seconds()) }(time.Now())
			}
			sim := scout
			if w > 0 { // reuse the scout for worker 0
				var berr error
				sim, berr = build()
				if berr != nil {
					shards[w].err = berr
					stopWorkers()
					return
				}
			}
			runner, rerr := sim.newRunner(wctx, cfg)
			if rerr != nil {
				if wctx.Err() != nil && errors.Is(rerr, wctx.Err()) {
					shards[w].interrupted = true
					shards[w].report = &CampaignReport{}
					return
				}
				shards[w].err = rerr
				stopWorkers()
				return
			}
			defer runner.close()
			var shardWork *telemetry.Counter
			if cfg.Metrics != nil {
				shardWork = cfg.Metrics.Counter(telemetry.Label(MetricCampaignShardWork, "worker", strconv.Itoa(w)))
			}
			rep := &CampaignReport{}
			// The worker's stride-assigned injection indices, batched into
			// groups of the campaign's pack size. Grouping non-contiguous
			// indices is fine: each row is an independent (fault, sample)
			// pair, and trace order within the shard stays the stride order
			// the merge below expects.
			var mine []int
			for i := w; i < cfg.Injections; i += workers {
				if i >= skip {
					mine = append(mine, i)
				}
			}
			batch := runner.batch
			for base := 0; base < len(mine); base += batch {
				if wctx.Err() != nil {
					shards[w].interrupted = true
					break
				}
				hi := base + batch
				if hi > len(mine) {
					hi = len(mine)
				}
				idx := mine[base:hi]
				faultsets := make([][]inject.Fault, len(idx))
				samples := make([]int, len(idx))
				for k, i := range idx {
					faultsets[k] = allFaults[i]
					samples[k] = i % n
				}
				start := time.Now()
				outs, errsB := runner.runBatch(w, idx, faultsets, samples)
				per := time.Since(start) / time.Duration(len(idx))
				if batch > 1 {
					ct.recordBatch(len(idx), batch)
				}
				for k := range idx {
					if errsB[k] != nil {
						var ie *InjectionError
						if !errors.As(errsB[k], &ie) {
							shards[w].err = errsB[k]
							stopWorkers()
							return
						}
						total := aborted.Add(1)
						ct.recordAborted()
						rep.Aborted++
						if cfg.KeepTrace {
							rep.Trace = append(rep.Trace, outs[k])
						}
						if cfg.MaxAborts > 0 && total > int64(cfg.MaxAborts) {
							shards[w].report = rep
							shards[w].err = fmt.Errorf("%d aborted injections exceed MaxAborts=%d: %w",
								total, cfg.MaxAborts, ie)
							stopWorkers()
							return
						}
						continue
					}
					out := outs[k]
					ct.record(out.Mismatch, out.NonFinite, out.Detected, per)
					if shardWork != nil {
						shardWork.Inc()
					}
					rep.Record(out.Mismatch, out.DeltaLoss, out.NonFinite)
					if out.Detected {
						rep.Detected++
					}
					if cfg.KeepTrace {
						rep.Trace = append(rep.Trace, out)
					}
				}
			}
			shards[w].report = rep
		}(w)
	}
	wg.Wait()

	// Fatal shard errors take precedence over partial results.
	for w, sh := range shards {
		if sh.err != nil {
			// Wrap with the shard index so a failed campaign is
			// diagnosable from the progress output (which shard stalled,
			// which worker's build failed).
			return nil, fmt.Errorf("goldeneye: campaign worker %d/%d: %w", w, workers, sh.err)
		}
	}
	merged := &CampaignReport{Config: cfg}
	if cfg.Resume != nil {
		merged.CampaignResult = cfg.Resume.Result
		merged.Detected = cfg.Resume.Detected
		merged.Aborted = cfg.Resume.Aborted
	}
	if cfg.KeepTrace {
		merged.Trace = make([]InjectionOutcome, cfg.Injections)
	}
	for w, sh := range shards {
		merged.Interrupted = merged.Interrupted || sh.interrupted
		merged.CampaignResult.Merge(sh.report.CampaignResult)
		merged.Detected += sh.report.Detected
		merged.Aborted += sh.report.Aborted
		if cfg.KeepTrace {
			for k, out := range sh.report.Trace {
				merged.Trace[w+k*workers] = out
			}
		}
	}
	if merged.Interrupted {
		return merged, ctx.Err()
	}
	return merged, nil
}
