package goldeneye

import (
	"goldeneye/internal/dse"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// DSE re-exports for the public API.
type (
	// DSEConfig parameterizes a design-space exploration (paper §IV-B).
	DSEConfig = dse.Config
	// DSEResult is a completed exploration.
	DSEResult = dse.Result
	// DSENode is one visited design point.
	DSENode = dse.Node
	// DSEPoint is a (family, bits, radix) configuration.
	DSEPoint = dse.Point
	// Family is a number-format family identifier.
	Family = dse.Family
)

// Format family identifiers.
const (
	FamilyFP  = dse.FamilyFP
	FamilyFxP = dse.FamilyFxP
	FamilyINT = dse.FamilyINT
	FamilyBFP = dse.FamilyBFP
	FamilyAFP = dse.FamilyAFP
)

// MakeFormat materializes a DSE point as a Format.
func MakeFormat(p DSEPoint) (Format, error) { return dse.MakeFormat(p) }

// RunDSE explores the given format family for the wrapped model: each
// visited design point is evaluated as validation accuracy under full
// emulation (weights and neurons), and the recursive binary-tree heuristic
// of §IV-B picks the path. cfg.Baseline is filled in automatically from a
// native FP32 evaluation when zero.
func (s *Simulator) RunDSE(x *tensor.Tensor, y []int, batch int, cfg DSEConfig) *DSEResult {
	if cfg.Baseline == 0 {
		cfg.Baseline = s.Evaluate(x, y, batch, EmulationConfig{})
	}
	return dse.Search(cfg, func(f numfmt.Format) float64 {
		return s.Evaluate(x, y, batch, EmulationConfig{Format: f, Weights: true, Neurons: true})
	})
}

// Mixed-assignment DSE re-exports.
type (
	// MixedDSEConfig parameterizes a per-layer mixed-assignment search.
	MixedDSEConfig = dse.MixedConfig
	// MixedDSECandidate is one per-layer role-triple precision option.
	MixedDSECandidate = dse.MixedCandidate
	// MixedDSENode is one evaluated mixed assignment.
	MixedDSENode = dse.MixedNode
	// MixedDSEResult is a completed mixed-assignment search, including the
	// accuracy×cost Pareto frontier over visited assignments.
	MixedDSEResult = dse.MixedResult
)

// MixedAssignment materializes one searched assignment as a
// FormatAssignment: each searched layer gets its candidate's role triple as
// a PerLayer entry. candidates must be the search's cost-ordered menu
// (MixedDSEResult.Candidates, or dse.OrderCandidates inside an eval
// callback) — assignment values index it.
func MixedAssignment(candidates []MixedDSECandidate, assignment map[int]int) *FormatAssignment {
	asg := &FormatAssignment{PerLayer: make(map[int]RoleFormats, len(assignment))}
	for layer, ci := range assignment {
		c := candidates[ci]
		asg.PerLayer[layer] = RoleFormats{
			Weights:     c.Weights,
			Activations: c.Activations,
			Accumulator: c.Accumulator,
		}
	}
	return asg
}

// RunMixedDSE searches per-layer mixed-precision assignments for the
// wrapped model (see dse.SearchMixed): each candidate is a (weights,
// activations, accumulator) role triple, every evaluated assignment runs as
// validation accuracy under the corresponding FormatAssignment, and the
// result carries the per-layer accuracy×cost Pareto frontier.
// cfg.Baseline is filled in from a native FP32 evaluation when zero;
// cfg.Layers defaults to the model's injectable CONV/LINEAR layers.
func (s *Simulator) RunMixedDSE(pool *EvalPool, cfg MixedDSEConfig) *MixedDSEResult {
	if len(cfg.Layers) == 0 {
		cfg.Layers = s.InjectableLayers()
	}
	if cfg.Baseline == 0 {
		cfg.Baseline = s.EvaluatePool(pool, EmulationConfig{})
	}
	ordered := dse.OrderCandidates(cfg.Candidates)
	return dse.SearchMixed(cfg, func(assignment map[int]int) float64 {
		return s.EvaluatePool(pool, EmulationConfig{Assignment: MixedAssignment(ordered, assignment)})
	})
}
