package goldeneye

import (
	"goldeneye/internal/dse"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/tensor"
)

// DSE re-exports for the public API.
type (
	// DSEConfig parameterizes a design-space exploration (paper §IV-B).
	DSEConfig = dse.Config
	// DSEResult is a completed exploration.
	DSEResult = dse.Result
	// DSENode is one visited design point.
	DSENode = dse.Node
	// DSEPoint is a (family, bits, radix) configuration.
	DSEPoint = dse.Point
	// Family is a number-format family identifier.
	Family = dse.Family
)

// Format family identifiers.
const (
	FamilyFP  = dse.FamilyFP
	FamilyFxP = dse.FamilyFxP
	FamilyINT = dse.FamilyINT
	FamilyBFP = dse.FamilyBFP
	FamilyAFP = dse.FamilyAFP
)

// MakeFormat materializes a DSE point as a Format.
func MakeFormat(p DSEPoint) (Format, error) { return dse.MakeFormat(p) }

// RunDSE explores the given format family for the wrapped model: each
// visited design point is evaluated as validation accuracy under full
// emulation (weights and neurons), and the recursive binary-tree heuristic
// of §IV-B picks the path. cfg.Baseline is filled in automatically from a
// native FP32 evaluation when zero.
func (s *Simulator) RunDSE(x *tensor.Tensor, y []int, batch int, cfg DSEConfig) *DSEResult {
	if cfg.Baseline == 0 {
		cfg.Baseline = s.Evaluate(x, y, batch, EmulationConfig{})
	}
	return dse.Search(cfg, func(f numfmt.Format) float64 {
		return s.Evaluate(x, y, batch, EmulationConfig{Format: f, Weights: true, Neurons: true})
	})
}
