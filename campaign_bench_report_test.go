package goldeneye_test

// Campaign batching benchmark report: serial vs batched throughput of a
// paper-scale (1000-injection) campaign on resnet_s, with the bit-identity
// guarantee re-checked at full scale. Gated behind an environment variable
// because it runs minutes of inference:
//
//	GOLDENEYE_BENCH_CAMPAIGN=BENCH_campaign.json go test -run TestCampaignBenchReport -v .
//
// `make bench` invokes exactly that. The JSON report records the host's
// parallelism alongside the throughput numbers: the batched speedup comes
// from the row-sharded matmul (internal/tensor) spreading a batch's rows
// across cores plus amortized per-pass overhead, so a single-core host
// measures ~1x while multi-core hosts scale with GOMAXPROCS.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/zoo"
)

// benchCampaignRow is one batch size's measurement in BENCH_campaign.json.
type benchCampaignRow struct {
	BatchSize    int     `json:"batch_size"`
	Seconds      float64 `json:"seconds"`
	InjPerSecond float64 `json:"injections_per_second"`
	Speedup      float64 `json:"speedup_vs_serial"`
	BitIdentical bool    `json:"bit_identical"`
}

type benchCampaignReport struct {
	Model      string             `json:"model"`
	Format     string             `json:"format"`
	Layer      int                `json:"layer"`
	Injections int                `json:"injections"`
	PoolSize   int                `json:"pool_size"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Rows       []benchCampaignRow `json:"rows"`
}

func TestCampaignBenchReport(t *testing.T) {
	out := os.Getenv("GOLDENEYE_BENCH_CAMPAIGN")
	if out == "" {
		t.Skip("set GOLDENEYE_BENCH_CAMPAIGN=<path> to run the campaign batching benchmark")
	}
	model, ds, err := zoo.Pretrained("resnet_s")
	if err != nil {
		t.Fatal(err)
	}
	sim := goldeneye.Wrap(model, ds.ValX)
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, 64), ds.ValY[:64], 0)
	if err != nil {
		t.Fatal(err)
	}
	report := benchCampaignReport{
		Model:      "resnet_s",
		Format:     numfmt.BFPe5m5().Name(),
		Layer:      sim.InjectableLayers()[2],
		Injections: 1000,
		PoolSize:   pool.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	cfgFor := func(batch int) goldeneye.CampaignConfig {
		return goldeneye.CampaignConfig{
			Format:         numfmt.BFPe5m5(),
			Site:           goldeneye.SiteValue,
			Target:         goldeneye.TargetNeuron,
			Layer:          report.Layer,
			Injections:     report.Injections,
			Seed:           97,
			Pool:           pool,
			BatchSize:      batch,
			UseRanger:      true,
			EmulateNetwork: true,
		}
	}

	run := func(batch int) (*goldeneye.CampaignReport, float64) {
		start := time.Now()
		rep, err := sim.RunCampaign(t.Context(), cfgFor(batch))
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		return rep, time.Since(start).Seconds()
	}

	serial, serialSec := run(1)
	report.Rows = append(report.Rows, benchCampaignRow{
		BatchSize:    1,
		Seconds:      serialSec,
		InjPerSecond: float64(report.Injections) / serialSec,
		Speedup:      1,
		BitIdentical: true,
	})
	for _, batch := range []int{8, 32} {
		rep, sec := run(batch)
		reportsIdentical(t, fmt.Sprintf("bench batch %d", batch), rep, serial)
		row := benchCampaignRow{
			BatchSize:    batch,
			Seconds:      sec,
			InjPerSecond: float64(report.Injections) / sec,
			Speedup:      serialSec / sec,
			BitIdentical: !t.Failed(),
		}
		report.Rows = append(report.Rows, row)
		t.Logf("batch %2d: %6.1f inj/s (%.2fx serial)", batch, row.InjPerSecond, row.Speedup)
	}

	final := report.Rows[len(report.Rows)-1]
	if final.Speedup < 3 {
		t.Logf("warning: batch-32 speedup %.2fx below the 3x multicore target "+
			"(GOMAXPROCS=%d); the row-sharded matmul needs real cores to fan a batch out",
			final.Speedup, report.GoMaxProcs)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
