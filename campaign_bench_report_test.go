package goldeneye_test

// Campaign performance matrix: injections/sec of a resnet_s campaign
// across format family × kernel path × batch size × GOMAXPROCS, with the
// bit-identity guarantee re-checked on every cell. Gated behind an
// environment variable because the full matrix runs minutes of inference:
//
//	GOLDENEYE_BENCH_CAMPAIGN=BENCH_campaign.json go test -run TestCampaignBenchReport -v .
//
// `make bench` invokes exactly that; `make bench-smoke` runs a small
// matrix (GOLDENEYE_BENCH_SMOKE=1) that still asserts every row's
// bit_identical flag. GOLDENEYE_BENCH_PROCS overrides the GOMAXPROCS
// column list (comma-separated, default "1,4").
//
// Per format family, the first row is the serial reference: batch 1,
// GOMAXPROCS=1, fused kernels off — the generic quantize→dequantize
// configuration every earlier benchmark of this repo measured. All other
// rows run the fused kernels, and speedup_vs_serial is relative to that
// family's reference row. gomaxprocs/num_cpu are per row, not per file:
// rows are measured at different GOMAXPROCS settings, so a file-level
// value would misdescribe most of them. See docs/PERFORMANCE.md for how
// to read the output.

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"goldeneye"
	"goldeneye/internal/numfmt"
	"goldeneye/internal/sampling"
	"goldeneye/internal/zoo"
)

// benchCampaignRow is one matrix cell of BENCH_campaign.json.
type benchCampaignRow struct {
	Format       string  `json:"format"`
	Family       string  `json:"family"`
	Kernel       string  `json:"kernel"` // "generic" (serial reference) or "fused"
	BatchSize    int     `json:"batch_size"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	Seconds      float64 `json:"seconds"`
	InjPerSecond float64 `json:"injections_per_second"`
	Speedup      float64 `json:"speedup_vs_serial"`
	BitIdentical bool    `json:"bit_identical"`
}

// benchSamplingSummary records the sampled-campaign section: how much of
// the fault space the estimator skipped and how far its SDC estimate landed
// from the exhaustive rate. benchdiff tracks the injections-saved trajectory
// across PRs from these fields and tolerates matrices that predate them.
type benchSamplingSummary struct {
	FaultSpace    int     `json:"fault_space_size"`
	Executed      int     `json:"injections_executed"`
	Pruned        int     `json:"injections_pruned"`
	SDCExhaustive float64 `json:"sdc_exhaustive"`
	SDCEstimate   float64 `json:"sdc_estimate"`
	SDCDelta      float64 `json:"sdc_delta_vs_exhaustive"`
	CIHalfWidth   float64 `json:"ci_half_width"`
}

type benchCampaignReport struct {
	Model      string                `json:"model"`
	Layer      int                   `json:"layer"`
	Injections int                   `json:"injections"`
	PoolSize   int                   `json:"pool_size"`
	Rows       []benchCampaignRow    `json:"rows"`
	Sampling   *benchSamplingSummary `json:"sampling,omitempty"`
}

// speedupVsSerial guards the ratio against zero/negative timings (a
// sub-millisecond smoke campaign can round to zero seconds).
func speedupVsSerial(baseSec, sec float64) float64 {
	if baseSec <= 0 || sec <= 0 {
		return 0
	}
	return baseSec / sec
}

// reportsEqual is the non-fatal core of reportsIdentical: integer
// aggregates plus the float64 Welford moments, which diverge on any
// single-bit difference anywhere in the campaign.
func reportsEqual(got, want *goldeneye.CampaignReport) bool {
	return got.Injections == want.Injections &&
		got.Mismatches == want.Mismatches &&
		got.NonFinite == want.NonFinite &&
		got.Detected == want.Detected &&
		got.Aborted == want.Aborted &&
		got.DeltaLoss == want.DeltaLoss &&
		got.MismatchStat == want.MismatchStat
}

// parseProcList parses GOLDENEYE_BENCH_PROCS ("1,4,8") with def as the
// fallback for empty or unusable input.
func parseProcList(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err == nil && p >= 1 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return def
	}
	return out
}

func TestCampaignBenchReport(t *testing.T) {
	out := os.Getenv("GOLDENEYE_BENCH_CAMPAIGN")
	if out == "" {
		t.Skip("set GOLDENEYE_BENCH_CAMPAIGN=<path> to run the campaign performance matrix")
	}
	smoke := os.Getenv("GOLDENEYE_BENCH_SMOKE") != ""

	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)
	defer numfmt.SetFusedKernels(numfmt.FusedKernels())

	injections, poolN := 240, 64
	batches := []int{1, 8, 32}
	procs := parseProcList(os.Getenv("GOLDENEYE_BENCH_PROCS"), []int{1, 4})
	if smoke {
		injections, poolN = 12, 8
		batches = []int{1, 8}
		procs = parseProcList(os.Getenv("GOLDENEYE_BENCH_PROCS"), []int{1, 2})
	}

	model, ds, err := zoo.Pretrained("resnet_s")
	if err != nil {
		t.Fatal(err)
	}
	sim := goldeneye.Wrap(model, ds.ValX)
	pool, err := goldeneye.NewEvalPool(ds.ValX.Slice(0, poolN), ds.ValY[:poolN], 0)
	if err != nil {
		t.Fatal(err)
	}
	report := benchCampaignReport{
		Model:      "resnet_s",
		Layer:      sim.InjectableLayers()[2],
		Injections: injections,
		PoolSize:   pool.Len(),
	}

	run := func(format numfmt.Format, batch int) (*goldeneye.CampaignReport, float64) {
		start := time.Now()
		rep, err := sim.RunCampaign(t.Context(), goldeneye.CampaignConfig{
			Format:         format,
			Site:           goldeneye.SiteValue,
			Target:         goldeneye.TargetNeuron,
			Layer:          report.Layer,
			Injections:     injections,
			Seed:           97,
			Pool:           pool,
			BatchSize:      batch,
			UseRanger:      true,
			EmulateNetwork: true,
		})
		if err != nil {
			t.Fatalf("%s batch %d: %v", format.Name(), batch, err)
		}
		return rep, time.Since(start).Seconds()
	}

	families := []struct {
		family string
		format numfmt.Format
	}{
		{"fp", numfmt.FP16(true)},
		{"int", numfmt.INT8()},
		{"bfp", numfmt.BFPe5m5()},
		{"afp", numfmt.AFPe5m2()},
	}
	for _, fam := range families {
		// Serial generic reference row.
		runtime.GOMAXPROCS(1)
		numfmt.SetFusedKernels(false)
		ref, refSec := run(fam.format, 1)
		report.Rows = append(report.Rows, benchCampaignRow{
			Format:       fam.format.Name(),
			Family:       fam.family,
			Kernel:       "generic",
			BatchSize:    1,
			GoMaxProcs:   1,
			NumCPU:       runtime.NumCPU(),
			Seconds:      refSec,
			InjPerSecond: float64(injections) / refSec,
			Speedup:      1,
			BitIdentical: true,
		})
		numfmt.SetFusedKernels(true)
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			for _, batch := range batches {
				rep, sec := run(fam.format, batch)
				identical := reportsEqual(rep, ref)
				if !identical {
					t.Errorf("%s: fused procs=%d batch=%d diverges from the serial generic reference",
						fam.format.Name(), p, batch)
				}
				row := benchCampaignRow{
					Format:       fam.format.Name(),
					Family:       fam.family,
					Kernel:       "fused",
					BatchSize:    batch,
					GoMaxProcs:   p,
					NumCPU:       runtime.NumCPU(),
					Seconds:      sec,
					InjPerSecond: float64(injections) / sec,
					Speedup:      speedupVsSerial(refSec, sec),
					BitIdentical: identical,
				}
				report.Rows = append(report.Rows, row)
				t.Logf("%-10s procs=%d batch=%2d: %7.1f inj/s (%.2fx serial generic)",
					fam.format.Name(), p, batch, row.InjPerSecond, row.Speedup)
			}
		}
	}
	runtime.GOMAXPROCS(origProcs)

	// Sampled-campaign summary: one exhaustive and one stratified-sampled
	// run at the same seed, so BENCH_campaign.json carries the
	// injections-saved trajectory and the estimate-vs-exhaustive delta.
	{
		numfmt.SetFusedKernels(true)
		base := goldeneye.CampaignConfig{
			Format:         numfmt.FP16(true),
			Site:           goldeneye.SiteValue,
			Target:         goldeneye.TargetNeuron,
			Layer:          report.Layer,
			Injections:     injections,
			Seed:           97,
			Pool:           pool,
			UseRanger:      true,
			EmulateNetwork: true,
		}
		exh, err := sim.RunCampaign(t.Context(), base)
		if err != nil {
			t.Fatalf("exhaustive reference: %v", err)
		}
		sampled := base
		sampled.Sampling = &sampling.Plan{Fraction: 0.25, Prune: true}
		est, err := sim.RunCampaign(t.Context(), sampled)
		if err != nil {
			t.Fatalf("sampled campaign: %v", err)
		}
		sr := est.Sampling
		// A smoke-sized fault space can leave a stratum with zero
		// observations, making the interval infinite — not a JSON value.
		// benchdiff tolerates a missing sampling section, so omit it
		// rather than record an unusable estimate.
		if hw := sr.CIHalfWidth(); math.IsInf(hw, 0) || math.IsNaN(hw) || math.IsNaN(sr.SDCRate()) {
			t.Logf("sampling: estimate not finite at %d executed of %d (smoke-sized sample); summary omitted",
				sr.ExecutedTotal(), sr.FaultSpace())
		} else {
			report.Sampling = &benchSamplingSummary{
				FaultSpace:    sr.FaultSpace(),
				Executed:      sr.ExecutedTotal(),
				Pruned:        sr.PrunedTotal(),
				SDCExhaustive: exh.MismatchRate(),
				SDCEstimate:   sr.SDCRate(),
				SDCDelta:      sr.SDCRate() - exh.MismatchRate(),
				CIHalfWidth:   hw,
			}
			t.Logf("sampling: executed %d of %d (%d pruned), SDC %.4f vs exhaustive %.4f (±%.4f)",
				sr.ExecutedTotal(), sr.FaultSpace(), sr.PrunedTotal(),
				sr.SDCRate(), exh.MismatchRate(), hw)
		}
	}

	// The multi-core throughput target: with ≥4 real cores, at least one
	// fused row at GOMAXPROCS≥4 must clear 5× its family's serial generic
	// reference. Hosts without the cores (or matrices that never ran a
	// procs≥4 column) record the matrix but log instead of failing — the
	// speedup needs hardware parallelism that isn't there to measure.
	best, measured := 0.0, false
	for _, row := range report.Rows {
		if row.Kernel == "fused" && row.GoMaxProcs >= 4 {
			measured = true
			if row.Speedup > best {
				best = row.Speedup
			}
		}
	}
	switch {
	case !smoke && measured && runtime.NumCPU() >= 4 && best < 5:
		t.Errorf("best fused speedup at GOMAXPROCS>=4 is %.2fx, below the 5x target on a %d-CPU host",
			best, runtime.NumCPU())
	case measured && best < 5:
		t.Logf("warning: best fused speedup at GOMAXPROCS>=4 is %.2fx (<5x target); "+
			"host has %d CPUs, so the matrix lacks the cores the target assumes",
			best, runtime.NumCPU())
	case !measured:
		t.Logf("note: no fused row ran at GOMAXPROCS>=4 (procs=%v); 5x target not evaluated", procs)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
